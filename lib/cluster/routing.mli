(** The cluster routing table: shard -> owning node address ("host:port"),
    versioned by one monotone epoch.

    Every node and every cluster-aware client holds one.  Mutations that
    come from elsewhere ({!observe}, a [MOVED] reply; {!install}, a [TOPO]
    reply) are adopted only when stamped with a strictly newer epoch, so
    stale information can never roll a table backwards and a client chases
    at most one redirect per epoch.  {!move} is the local decision — it
    bumps the epoch and is what a migration's routing flip calls. *)

type t

val create : epoch:int -> owners:string array -> t
(** [owners.(s)] is shard [s]'s address.  The array is copied. *)

val initial : addrs:string list -> shards:int -> t
(** The deterministic bootstrap every node computes from the shared node
    list: shard [s] owned by [List.nth addrs (s mod n)], epoch 1. *)

val shards : t -> int
val epoch : t -> int
val owner : t -> int -> string

val snapshot : t -> int * (int * string) list
(** Consistent [(epoch, [(shard, addr); ...])] — the [TOPO] reply body. *)

val move : t -> shard:int -> addr:string -> int
(** Reassign [shard] to [addr], bumping the epoch; returns the new epoch. *)

val observe : t -> shard:int -> epoch:int -> addr:string -> bool
(** Adopt one remote mapping iff [epoch] is strictly newer; returns whether
    the table changed.  Out-of-range shards are ignored. *)

val install : t -> epoch:int -> owners:(int * string) list -> bool
(** Adopt a whole remote table iff [epoch] is strictly newer. *)

val shard_of_key : t -> string -> int
(** Key routing with the same FNV-1a hash as
    {!Kex_resilient.Sharded_store.shard_of_key}, so shard ids agree across
    nodes and clients. *)
