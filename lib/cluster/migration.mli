(** Pure helpers for live shard migration.

    A change is [(key, Some v)] = set, [(key, None)] = delete — the
    [Mig_import] payload alphabet.  The server ships a shard as a bulk
    snapshot while it keeps serving, then fences it, drains in-flight
    batches, and ships {!diff} of the bulk snapshot against the quiescent
    state as the final chunk. *)

val diff :
  before:(string * string) list ->
  after:(string * string) list ->
  (string * string option) list
(** The change list turning [before] into [after].  Both inputs must be
    sorted by key (what [Kv_store.read_versioned] returns); the output is
    sorted by key, one linear merge.  Unchanged bindings are omitted. *)

val apply :
  before:(string * string) list ->
  (string * string option) list ->
  (string * string) list
(** Apply a change list to sorted bindings; the test oracle for [diff]:
    [apply ~before (diff ~before ~after) = after]. *)

val chunks : max:int -> 'a list -> 'a list list
(** Slice into consecutive chunks of at most [max] items (order kept), so a
    bulk transfer never builds one frame near [max_frame]. *)
