(* Pure helpers for live shard migration: computing the fenced delta between
   two snapshots of the same shard, and slicing change lists into bounded
   wire chunks.

   The migration protocol (driven by the server) is: ship a bulk snapshot of
   the shard while it keeps serving, then fence its submission ring, drain
   in-flight batches, and ship only the *difference* between the bulk
   snapshot and the now-quiescent state.  Both snapshots come from
   [Kv_store.read_versioned] and are sorted by key, so the diff is one
   linear merge. *)

(* A change is (key, Some v) = set, (key, None) = delete — the Mig_import
   payload alphabet. *)

let diff ~before ~after =
  let rec go before after acc =
    match (before, after) with
    | [], [] -> List.rev acc
    | [], (k, v) :: after -> go [] after ((k, Some v) :: acc)
    | (k, _) :: before, [] -> go before [] ((k, None) :: acc)
    | ((kb, vb) :: before' as before), ((ka, va) :: after' as after) ->
        let c = compare kb ka in
        if c < 0 then go before' after ((kb, None) :: acc)
        else if c > 0 then go before after' ((ka, Some va) :: acc)
        else go before' after' (if String.equal vb va then acc else (ka, Some va) :: acc)
  in
  go before after []

module Smap = Map.Make (String)

let apply ~before changes =
  let m =
    List.fold_left
      (fun m (k, v) -> match v with Some v -> Smap.add k v m | None -> Smap.remove k m)
      (Smap.of_seq (List.to_seq before))
      changes
  in
  Smap.bindings m

let chunks ~max items =
  if max < 1 then invalid_arg "Migration.chunks: max must be positive";
  let rec split n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> split (n - 1) (x :: acc) rest
  in
  let rec go acc = function
    | [] -> List.rev acc
    | items ->
        let chunk, rest = split max [] items in
        go (chunk :: acc) rest
  in
  go [] items
