(* The cluster routing table: shard -> owning node address, versioned by one
   monotone epoch.

   This is the exclusive-selection core of the cluster (Chlebus & Kowalski's
   problem shape): at any epoch every shard has exactly one owner, and
   ownership only changes together with an epoch bump, so two nodes can
   never both believe they own a shard *at the same epoch*.  Everyone —
   server nodes and clients alike — holds one of these and adopts newer
   mappings only ([observe]/[install] are monotone in the epoch), so a stale
   MOVED or TOPO reply can never roll a table backwards.  A client chasing a
   key therefore follows at most one redirect per epoch: the redirect either
   teaches it a newer epoch or tells it nothing new.

   The table is mutated under a mutex and read under it too — routing
   lookups are two loads, far off any hot path that matters (the loadgen
   does one lookup per generated request; servers consult their own [owned]
   bitmap, not this table, on the data path). *)

type t = {
  m : Mutex.t;
  mutable epoch : int;
  owners : string array;  (* shard -> "host:port" *)
}

(* srclint knows this wrapper (Srclint.default_manifest): anything run
   through [locked] holds [m], which guards [epoch] and [owners]. *)
let locked t f = Kex_sync.Sync.with_lock t.m f

let create ~epoch ~owners =
  if Array.length owners = 0 then invalid_arg "Routing.create: no shards";
  if epoch < 0 then invalid_arg "Routing.create: negative epoch";
  { m = Mutex.create (); epoch; owners = Array.copy owners }

(* The bootstrap assignment every node computes identically from the shared
   [--cluster] node list: shard s starts at node (s mod n), epoch 1.  *)
let initial ~addrs ~shards =
  let n = List.length addrs in
  if n = 0 then invalid_arg "Routing.initial: no nodes";
  if shards < 1 then invalid_arg "Routing.initial: no shards";
  let addrs = Array.of_list addrs in
  create ~epoch:1 ~owners:(Array.init shards (fun s -> addrs.(s mod n)))

let shards t = locked t (fun () -> Array.length t.owners)
let epoch t = locked t (fun () -> t.epoch)
let owner t shard = locked t (fun () -> t.owners.(shard))

let snapshot t =
  locked t (fun () ->
      (t.epoch, Array.to_list (Array.mapi (fun s addr -> (s, addr)) t.owners)))

(* Local decision: reassign [shard] and bump the epoch.  Returns the new
   epoch — the one the migration's final import and MOVED replies carry. *)
let move t ~shard ~addr =
  locked t (fun () ->
      t.epoch <- t.epoch + 1;
      t.owners.(shard) <- addr;
      t.epoch)

(* Remote teaching: adopt a (shard, addr) mapping stamped [epoch] iff it is
   strictly newer than what we hold.  Returns whether anything changed. *)
let observe t ~shard ~epoch ~addr =
  locked t (fun () ->
      if epoch > t.epoch && shard >= 0 && shard < Array.length t.owners then begin
        t.epoch <- epoch;
        t.owners.(shard) <- addr;
        true
      end
      else false)

(* Whole-table teaching (a TOPO reply): adopt iff strictly newer. *)
let install t ~epoch ~owners =
  locked t (fun () ->
      if epoch > t.epoch then begin
        List.iter
          (fun (shard, addr) ->
            if shard >= 0 && shard < Array.length t.owners then t.owners.(shard) <- addr)
          owners;
        t.epoch <- epoch;
        true
      end
      else false)

(* Same hash as the in-process sharded store, so "shard" means the same
   thing on every node and in every client. *)
let shard_of_key t key =
  let n = locked t (fun () -> Array.length t.owners) in
  if n = 1 then 0 else Kex_resilient.Sharded_store.hash_key key mod n
