type 'state violation = { property : string; trace : (string * 'state) list }

type 'state report = {
  states : int;
  transitions : int;
  complete : bool;
  violation : 'state violation option;
}

(* The reachable edge set, as parallel flat int arrays (src.(i) -> dst.(i)).
   Recording them is opt-in: [check] never reads edges, so it runs without
   accumulating an O(transitions) structure; [reachable] asks for them and
   gets cache-friendly arrays instead of a list of boxed pairs. *)
type edges = { src : int array; dst : int array }

let n_edges e = Array.length e.src
let edge_list e = List.init (n_edges e) (fun i -> (e.src.(i), e.dst.(i)))

(* Internal BFS bookkeeping: state index -> (predecessor index, label). *)
let bfs (type s) (module M : System.MODEL with type state = s) ~max_states ~record_edges
    ~on_state ~on_edge =
  let index : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let states : s array ref = ref (Array.make 1024 (List.hd M.initial)) in
  let parents = ref (Array.make 1024 (-1, "init")) in
  let n = ref 0 in
  let e_src = ref (Array.make 1024 0) in
  let e_dst = ref (Array.make 1024 0) in
  let n_edges = ref 0 in
  let record_edge i j =
    if record_edges then begin
      if !n_edges >= Array.length !e_src then begin
        let grow a =
          let a' = Array.make (2 * Array.length a) 0 in
          Array.blit a 0 a' 0 (Array.length a);
          a'
        in
        e_src := grow !e_src;
        e_dst := grow !e_dst
      end;
      !e_src.(!n_edges) <- i;
      !e_dst.(!n_edges) <- j;
      incr n_edges
    end
  in
  let transitions = ref 0 in
  let queue = Queue.create () in
  let push parent label s =
    let key = M.encode s in
    match Hashtbl.find_opt index key with
    | Some i ->
        if parent >= 0 then record_edge parent i;
        Some i
    | None ->
        if !n >= max_states then None
        else begin
          if !n >= Array.length !states then begin
            let grow a fill =
              let a' = Array.make (2 * Array.length a) fill in
              Array.blit a 0 a' 0 (Array.length a);
              a'
            in
            states := grow !states s;
            parents := grow !parents (-1, "init")
          end;
          let i = !n in
          Hashtbl.add index key i;
          !states.(i) <- s;
          !parents.(i) <- (parent, label);
          incr n;
          if parent >= 0 then record_edge parent i;
          Queue.push i queue;
          Some i
        end
  in
  let capped = ref false in
  let stop = ref false in
  List.iter
    (fun s ->
      match push (-1) "init" s with
      | Some i -> if on_state i s = `Stop then stop := true
      | None -> capped := true)
    M.initial;
  while (not !stop) && not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    let s = !states.(i) in
    List.iter
      (fun (label, s') ->
        if not !stop then begin
          incr transitions;
          match push i label s' with
          | Some j ->
              if on_edge i s label s' = `Stop then stop := true
              else if
                (* only check state invariants the first time we see j *)
                j = !n - 1 && on_state j s' = `Stop
              then stop := true
          | None -> capped := true
        end)
      (M.next s)
  done;
  let trace_to i =
    let rec go i acc =
      if i < 0 then acc
      else
        let parent, label = !parents.(i) in
        go parent ((label, !states.(i)) :: acc)
    in
    go i []
  in
  let edges = { src = Array.sub !e_src 0 !n_edges; dst = Array.sub !e_dst 0 !n_edges } in
  (!n, !transitions, not !capped, Array.sub !states 0 !n, edges, trace_to)

let check (type s) (module M : System.MODEL with type state = s) ?(max_states = 2_000_000) () =
  let violation = ref None in
  let check_state i s =
    match List.find_opt (fun (_, p) -> not (p s)) M.invariants with
    | Some (name, _) ->
        violation := Some (name, `State i);
        `Stop
    | None -> `Continue
  in
  let check_edge i _s _label s' =
    (* step invariants get the *target* trace; the label is included there *)
    match List.find_opt (fun (_, p) -> not (p _s s')) M.step_invariants with
    | Some (name, _) ->
        violation := Some (name, `Edge (i, _label, s'));
        `Stop
    | None -> `Continue
  in
  let states, transitions, complete, _all, _edges, trace_to =
    bfs (module M) ~max_states ~record_edges:false ~on_state:check_state ~on_edge:check_edge
  in
  let violation =
    match !violation with
    | None -> None
    | Some (property, `State i) -> Some { property; trace = trace_to i }
    | Some (property, `Edge (i, label, s')) ->
        Some { property; trace = trace_to i @ [ (label, s') ] }
  in
  { states; transitions; complete; violation }

let reachable (type s) (module M : System.MODEL with type state = s) ?(max_states = 2_000_000)
    () =
  let states, _, complete, all, edges, _ =
    bfs (module M) ~max_states ~record_edges:true
      ~on_state:(fun _ _ -> `Continue)
      ~on_edge:(fun _ _ _ _ -> `Continue)
  in
  if not complete then failwith (M.name ^ ": state space exceeds max_states");
  ignore states;
  (all, edges)

let progress_on_graph states preds ~waiting ~goal =
  let n = Array.length states in
  let can_reach_goal = Array.make n false in
  let queue = Queue.create () in
  Array.iteri
    (fun i s ->
      if goal s then begin
        can_reach_goal.(i) <- true;
        Queue.push i queue
      end)
    states;
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    List.iter
      (fun i ->
        if not can_reach_goal.(i) then begin
          can_reach_goal.(i) <- true;
          Queue.push i queue
        end)
      preds.(j)
  done;
  let stuck = ref None in
  Array.iteri
    (fun i s -> if !stuck = None && waiting s && not can_reach_goal.(i) then stuck := Some (s, i))
    states;
  !stuck

let predecessors states edges =
  let preds = Array.make (Array.length states) [] in
  for e = 0 to n_edges edges - 1 do
    preds.(edges.dst.(e)) <- edges.src.(e) :: preds.(edges.dst.(e))
  done;
  preds

let possible_progress (type s) (module M : System.MODEL with type state = s) ?max_states
    ~waiting ~goal () =
  let states, edges = reachable (module M) ?max_states () in
  progress_on_graph states (predecessors states edges) ~waiting ~goal

let possible_progress_many (type s) (module M : System.MODEL with type state = s) ?max_states
    ~cases () =
  let states, edges = reachable (module M) ?max_states () in
  let preds = predecessors states edges in
  List.map (fun (waiting, goal) -> progress_on_graph states preds ~waiting ~goal) cases

let hunt (type s) (module M : System.MODEL with type state = s) ?on_step ~seeds ~steps () =
  let external_check ~label s =
    match on_step with
    | None -> None
    | Some f -> f ~label s
  in
  let bad_state ~label s =
    match List.find_opt (fun (_, p) -> not (p s)) M.invariants |> Option.map fst with
    | Some p -> Some p
    | None -> external_check ~label s
  in
  let bad_step s s' =
    List.find_opt (fun (_, p) -> not (p s s')) M.step_invariants |> Option.map fst
  in
  let walk seed =
    let rng = Random.State.make [| seed |] in
    let rec go ~label s trace remaining =
      match bad_state ~label s with
      | Some property -> Some { property; trace = List.rev trace }
      | None ->
          if remaining = 0 then None
          else begin
            match M.next s with
            | [] -> None
            | moves ->
                let label, s' = List.nth moves (Random.State.int rng (List.length moves)) in
                let trace = (label, s') :: trace in
                (match bad_step s s' with
                | Some property -> Some { property; trace = List.rev trace }
                | None -> go ~label s' trace (remaining - 1))
          end
    in
    let init = List.nth M.initial (Random.State.int rng (List.length M.initial)) in
    go ~label:"init" init [ ("init", init) ] steps
  in
  List.fold_left (fun acc seed -> match acc with Some _ -> acc | None -> walk seed) None seeds

let pp_violation pp_state ppf { property; trace } =
  Format.fprintf ppf "violated: %s@." property;
  List.iteri
    (fun i (label, s) -> Format.fprintf ppf "  %2d. [%s] %a@." i label pp_state s)
    trace
