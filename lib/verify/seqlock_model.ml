(* The service's wait-free read plane, as a checkable model: k writers
   (admission-wrapped mutators) publish (version, value) snapshots through a
   seqlock — odd sequence while the pair is half-written, even when stable —
   and readers run the retry protocol from Snapshot.read: read an even s1,
   read value, read version, accept only if the sequence still equals s1.

   The payload is kept dependent on the version (value = 100 + version), so
   "the reader observed a torn pair" is a single decidable predicate on the
   reader's registers: a mixed old/new observation breaks value = 100 + ver.

   Crashes follow the implementation's failure model: a writer may die idle
   or while holding its admission slot *before* touching the seqlock (deaths
   happen at the admission boundary), never inside the odd window — which is
   exactly why a fully wedged shard (all k slots held by corpses) still
   answers reads, and the possible-progress analysis below proves it.

   Broken variants seed the bugs the protocol exists to prevent:
   - [Skip_recheck]    reader accepts without comparing the sequence again;
   - [Skip_odd_check]  reader starts its read inside the odd window;
   - [Skip_seqlock]    writer publishes without marking the window at all. *)

type variant = Faithful | Skip_recheck | Skip_odd_check | Skip_seqlock

(* Writer pcs: 0 idle; 1 slot held, pre-publish; 2 odd window taken;
   3 value written; 4 version written; 99 retired.
   Reader pcs: 0 idle; 1 reading s1; 2 reading value; 3 reading version;
   4 recheck; 5 done (absorbing). *)
type state = {
  seq : int;  (* seqlock sequence: odd = publication in progress *)
  ver : int;  (* published version *)
  value : int;  (* published payload; consistent iff 100 + ver *)
  slots : int;  (* admission slots held; the k-exclusion resource *)
  w_pc : int array;
  w_ver : int array;  (* version a mid-publish writer is installing *)
  w_crashed : bool array;
  r_pc : int array;
  r_s1 : int array;
  r_val : int array;
  r_ver : int array;
  r_start : int array;  (* published version when the read began *)
}

let reader_done s j = s.r_pc.(j) = 5
let reader_reading s j = s.r_pc.(j) >= 1 && s.r_pc.(j) <= 4

let crash_count s =
  Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 s.w_crashed

let model ?(variant = Faithful) ~writers ~readers ~k ~max_crashes () :
    (module System.MODEL with type state = state) =
  (module struct
    type nonrec state = state

    let name =
      Printf.sprintf "seqlock[w=%d,r=%d,k=%d,crashes<=%d%s]" writers readers k max_crashes
        (match variant with
        | Faithful -> ""
        | Skip_recheck -> ",skip-recheck"
        | Skip_odd_check -> ",skip-odd-check"
        | Skip_seqlock -> ",skip-seqlock")

    let initial =
      [ { seq = 0;
          ver = 0;
          value = 100;
          slots = 0;
          w_pc = Array.make writers 0;
          w_ver = Array.make writers 0;
          w_crashed = Array.make writers false;
          r_pc = Array.make readers 0;
          r_s1 = Array.make readers 0;
          r_val = Array.make readers 0;
          r_ver = Array.make readers 0;
          r_start = Array.make readers 0 } ]

    let set_arr a i v = (let a = Array.copy a in a.(i) <- v; a)

    let next s =
      let moves = ref [] in
      let add label s' = moves := (label, s') :: !moves in
      for i = 0 to writers - 1 do
        if not s.w_crashed.(i) then begin
          let lbl fmt = Printf.sprintf ("w%d: " ^^ fmt) i in
          (match s.w_pc.(i) with
          | 0 ->
              if s.slots < k then
                add (lbl "acquire slot") { s with slots = s.slots + 1; w_pc = set_arr s.w_pc i 1 };
              add (lbl "retire") { s with w_pc = set_arr s.w_pc i 99 }
          | 1 ->
              (* Commit the mutation and open the publication window.  A
                 faithful writer waits out someone else's odd window; the
                 mutant writes with no window at all. *)
              if variant = Skip_seqlock then
                add (lbl "commit v%d (no seqlock)" (s.ver + 1))
                  { s with w_ver = set_arr s.w_ver i (s.ver + 1); w_pc = set_arr s.w_pc i 2 }
              else if s.seq land 1 = 0 then
                add (lbl "seqlock odd, commit v%d" (s.ver + 1))
                  { s with
                    seq = s.seq + 1;
                    w_ver = set_arr s.w_ver i (s.ver + 1);
                    w_pc = set_arr s.w_pc i 2 }
          | 2 ->
              add (lbl "write value")
                { s with value = 100 + s.w_ver.(i); w_pc = set_arr s.w_pc i 3 }
          | 3 ->
              add (lbl "write version") { s with ver = s.w_ver.(i); w_pc = set_arr s.w_pc i 4 }
          | 4 ->
              add (lbl "seqlock even, release slot")
                { s with
                  seq = (if variant = Skip_seqlock then s.seq else s.seq + 1);
                  slots = s.slots - 1;
                  w_pc = set_arr s.w_pc i 99 }
          | _ -> ());
          (* Deaths only at the admission boundary: idle, or slot held but
             the seqlock untouched.  A crash at pc=1 parks the slot forever
             (the wedged-shard scenario); the odd window can never wedge. *)
          if (s.w_pc.(i) = 0 || s.w_pc.(i) = 1) && crash_count s < max_crashes then
            add (lbl "crash") { s with w_crashed = set_arr s.w_crashed i true }
        end
      done;
      for j = 0 to readers - 1 do
        let lbl fmt = Printf.sprintf ("r%d: " ^^ fmt) j in
        match s.r_pc.(j) with
        | 0 ->
            add (lbl "start read")
              { s with r_start = set_arr s.r_start j s.ver; r_pc = set_arr s.r_pc j 1 }
        | 1 ->
            if s.seq land 1 = 0 || variant = Skip_odd_check then
              add (lbl "read s1=%d" s.seq)
                { s with r_s1 = set_arr s.r_s1 j s.seq; r_pc = set_arr s.r_pc j 2 }
            else add (lbl "s1 odd: spin") s
        | 2 ->
            add (lbl "read value")
              { s with r_val = set_arr s.r_val j s.value; r_pc = set_arr s.r_pc j 3 }
        | 3 ->
            add (lbl "read version")
              { s with r_ver = set_arr s.r_ver j s.ver; r_pc = set_arr s.r_pc j 4 }
        | 4 ->
            if variant = Skip_recheck then
              add (lbl "accept (no recheck)") { s with r_pc = set_arr s.r_pc j 5 }
            else if s.seq = s.r_s1.(j) then
              add (lbl "recheck ok: accept") { s with r_pc = set_arr s.r_pc j 5 }
            else add (lbl "recheck failed: retry") { s with r_pc = set_arr s.r_pc j 1 }
        | _ -> ()
      done;
      List.rev !moves

    let encode s =
      let b = Buffer.create 64 in
      Buffer.add_string b (Printf.sprintf "%d|%d|%d|%d" s.seq s.ver s.value s.slots);
      Array.iteri
        (fun i pc ->
          Buffer.add_string b
            (Printf.sprintf ";w%d=%d,%d,%b" i pc s.w_ver.(i) s.w_crashed.(i)))
        s.w_pc;
      Array.iteri
        (fun j pc ->
          Buffer.add_string b
            (Printf.sprintf ";r%d=%d,%d,%d,%d,%d" j pc s.r_s1.(j) s.r_val.(j) s.r_ver.(j)
               s.r_start.(j)))
        s.r_pc;
      Buffer.contents b

    let pp ppf s =
      Format.fprintf ppf "seq=%d ver=%d value=%d slots=%d" s.seq s.ver s.value s.slots;
      Array.iteri
        (fun i pc ->
          Format.fprintf ppf " w%d:pc=%d%s%s" i pc
            (if pc >= 2 && pc <= 4 then Printf.sprintf "(v%d)" s.w_ver.(i) else "")
            (if s.w_crashed.(i) then "(dead)" else ""))
        s.w_pc;
      Array.iteri
        (fun j pc ->
          Format.fprintf ppf " r%d:pc=%d" j pc;
          if pc = 5 then Format.fprintf ppf "(saw v%d=%d)" s.r_ver.(j) s.r_val.(j))
        s.r_pc

    let invariants =
      [ ("k-exclusion", fun s -> s.slots <= k);
        ( "torn snapshot",
          fun s ->
            Array.for_all Fun.id
              (Array.init readers (fun j ->
                   (not (reader_done s j)) || s.r_val.(j) = 100 + s.r_ver.(j))) );
        ( "stale snapshot",
          fun s ->
            Array.for_all Fun.id
              (Array.init readers (fun j ->
                   (not (reader_done s j)) || s.r_ver.(j) >= s.r_start.(j))) ) ]
      @
      (* Writer-side regression, meaningful only when the writer actually
         keeps the discipline: a stable (even) sequence implies the
         published pair is whole. *)
      if variant = Faithful then
        [ ("stable pair consistent", fun s -> s.seq land 1 = 1 || s.value = 100 + s.ver) ]
      else []

    let step_invariants = [ ("version monotone", fun s s' -> s'.ver >= s.ver) ]
  end)
