(** The wait-free read plane's seqlock publication protocol
    ({!Kex_resilient.Snapshot}) as a checkable model: k admission-wrapped
    writers publish (version, value) pairs through an even/odd sequence
    counter while readers run the read-retry protocol, with the payload tied
    to the version (value = 100 + version) so a torn observation is a single
    predicate on the reader's registers.

    Invariants: [k-exclusion] (at most k slots held), [torn snapshot]
    (finished readers observed a whole pair), [stale snapshot] (finished
    readers observed at least the version published when their read began —
    acknowledged mutations are visible), plus, for the faithful variant,
    [stable pair consistent] (an even sequence implies a whole published
    pair).  Step invariant: the published version never decreases.

    Writer crashes occur only at the admission boundary — idle or slot held
    before the seqlock is touched — mirroring the service, where a killed
    worker dies before entering the store.  A crashed writer parks its slot
    forever, so exhausting the crash budget models a fully wedged shard;
    reads must (and do) still terminate, which tests check with
    {!Explore.possible_progress}. *)

type variant =
  | Faithful
  | Skip_recheck  (** reader accepts without re-reading the sequence *)
  | Skip_odd_check  (** reader starts inside the odd window *)
  | Skip_seqlock  (** writer publishes without marking the window *)

type state = {
  seq : int;
  ver : int;
  value : int;
  slots : int;
  w_pc : int array;
  w_ver : int array;
  w_crashed : bool array;
  r_pc : int array;
  r_s1 : int array;
  r_val : int array;
  r_ver : int array;
  r_start : int array;
}

val reader_done : state -> int -> bool
val reader_reading : state -> int -> bool

val model :
  ?variant:variant ->
  writers:int ->
  readers:int ->
  k:int ->
  max_crashes:int ->
  unit ->
  (module System.MODEL with type state = state)
