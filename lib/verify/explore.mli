(** Breadth-first exhaustive exploration with invariant checking and
    counterexample extraction. *)

type 'state violation = {
  property : string;  (** name of the violated invariant *)
  trace : (string * 'state) list;
      (** transition labels and states from an initial state to the bad one;
          the first label is ["init"] *)
}

type 'state report = {
  states : int;  (** distinct reachable states *)
  transitions : int;  (** explored transitions *)
  complete : bool;  (** false if the [max_states] cap was hit *)
  violation : 'state violation option;  (** first violation found, if any *)
}

val check :
  (module System.MODEL with type state = 's) -> ?max_states:int -> unit -> 's report
(** Explore breadth-first from the initial states, checking every state
    invariant on every state and every step invariant on every transition.
    Stops at the first violation.  Default cap: 2_000_000 states.  Edge
    recording is off: [check] never reads the edge set, so it explores
    without accumulating an O(transitions) structure. *)

type edges
(** Directed edges of the reachable graph as flat parallel int arrays —
    compact and cache-friendly for the graph passes of the
    possible-progress analyses. *)

val n_edges : edges -> int

val edge_list : edges -> (int * int) list
(** Materialize (src, dst) pairs, in discovery order — for small graphs and
    debugging; the analyses below consume the arrays directly. *)

val reachable :
  (module System.MODEL with type state = 's) -> ?max_states:int -> unit -> 's array * edges
(** The reachable state graph: states (index order = discovery order) and
    directed edges.  Used for possible-progress analyses. *)

val possible_progress :
  (module System.MODEL with type state = 's) ->
  ?max_states:int ->
  waiting:('s -> bool) ->
  goal:('s -> bool) ->
  unit ->
  ('s * int) option
(** Checks that from every reachable state satisfying [waiting] there exists
    a path to a state satisfying [goal].  Returns a stuck state (and its
    index) if one exists — i.e. a reachable configuration from which the goal
    is unreachable, witnessing a possible deadlock/lockout. *)

val possible_progress_many :
  (module System.MODEL with type state = 's) ->
  ?max_states:int ->
  cases:(('s -> bool) * ('s -> bool)) list ->
  unit ->
  ('s * int) option list
(** {!possible_progress} for several (waiting, goal) pairs over a single
    construction of the reachable graph. *)

val hunt :
  (module System.MODEL with type state = 's) ->
  ?on_step:(label:string -> 's -> string option) ->
  seeds:int list ->
  steps:int ->
  unit ->
  's violation option
(** Randomized safety search: one random walk per seed, [steps] transitions
    long, checking every invariant along the way.  Finds deep violations that
    exhaustive search cannot reach (used against mutants whose bugs need
    long schedules); returns the full violating trace.

    [on_step] is an external checker invoked on the initial state and after
    every transition, with the label of the transition just taken; returning
    [Some property] stops the walk and reports a violation of [property]
    with the usual trace.  This is how checkers that are not part of the
    model — e.g. the analysis sanitizer's duplicate-name discipline — ride
    along a randomized hunt. *)

val pp_violation :
  (Format.formatter -> 's -> unit) -> Format.formatter -> 's violation -> unit
