type variant = Faithful | No_clear

(* pc 0: noncritical; pc 1: scanning (testing bit [name]); pc 2: holding. *)
type state = {
  pc : int array;
  crashed : bool array;
  name : int array;  (* scan cursor / held name *)
  bits : bool array;  (* X[0..k-2] *)
}

let holding s pid = s.pc.(pid) = 2
let held_name s pid = if holding s pid then Some s.name.(pid) else None
let scanning s pid = (not s.crashed.(pid)) && s.pc.(pid) = 1
let crash_count s = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 s.crashed

let model ?(variant = Faithful) ~procs ~k ~max_crashes () :
    (module System.MODEL with type state = state) =
  (module struct
    type nonrec state = state

    let name =
      Printf.sprintf "fig7[procs=%d,k=%d,crashes<=%d%s]" procs k max_crashes
        (match variant with Faithful -> "" | No_clear -> ",no-clear")

    let initial =
      [ { pc = Array.make procs 0;
          crashed = Array.make procs false;
          name = Array.make procs 0;
          bits = Array.make (max 1 (k - 1)) false } ]

    let set_arr a i v = (let a = Array.copy a in a.(i) <- v; a)

    let next s =
      let moves = ref [] in
      let add label s' = moves := (label, s') :: !moves in
      for pid = 0 to procs - 1 do
        if not s.crashed.(pid) then begin
          let lbl fmt = Printf.sprintf ("p%d: " ^^ fmt) pid in
          (match s.pc.(pid) with
          | 0 ->
              add (lbl "start scan")
                { s with pc = set_arr s.pc pid 1; name = set_arr s.name pid 0 };
              add (lbl "retire") { s with pc = set_arr s.pc pid 99 }
          | 99 -> ()
          | 1 ->
              let i = s.name.(pid) in
              if i >= k - 1 then
                (* Name k-1 needs no bit: at most one process reaches it. *)
                add (lbl "take last name %d" i) { s with pc = set_arr s.pc pid 2 }
              else if not s.bits.(i) then
                add (lbl "tas X[%d] wins" i)
                  { s with pc = set_arr s.pc pid 2; bits = set_arr s.bits i true }
              else add (lbl "tas X[%d] loses" i) { s with name = set_arr s.name pid (i + 1) }
          | 2 ->
              let i = s.name.(pid) in
              let bits =
                match variant with
                | No_clear -> s.bits
                | Faithful -> if i < k - 1 then set_arr s.bits i false else s.bits
              in
              add (lbl "release name %d" i) { s with pc = set_arr s.pc pid 0; bits }
          | _ -> assert false);
          if s.pc.(pid) <> 0 && s.pc.(pid) <> 99 && crash_count s < max_crashes then
            add (lbl "crash@%d" s.pc.(pid)) { s with crashed = set_arr s.crashed pid true }
        end
      done;
      !moves

    let encode s =
      let b = Buffer.create 32 in
      Array.iteri
        (fun i pc ->
          Buffer.add_string b (string_of_int pc);
          Buffer.add_char b (if s.crashed.(i) then 'X' else ':');
          Buffer.add_string b (string_of_int s.name.(i));
          Buffer.add_char b ',')
        s.pc;
      Array.iter (fun bit -> Buffer.add_char b (if bit then '1' else '0')) s.bits;
      Buffer.contents b

    let pp ppf s =
      Format.fprintf ppf "pc=[%s] names=[%s] bits=[%s]"
        (String.concat ";" (Array.to_list (Array.map string_of_int s.pc)))
        (String.concat ";" (Array.to_list (Array.map string_of_int s.name)))
        (String.concat "" (Array.to_list (Array.map (fun v -> if v then "1" else "0") s.bits)))

    let invariants =
      [ ( "names in range",
          fun s ->
            let ok = ref true in
            Array.iteri (fun pid pc -> if pc = 2 && (s.name.(pid) < 0 || s.name.(pid) >= k) then ok := false) s.pc;
            !ok );
        ( "names unique among holders",
          fun s ->
            let seen = Array.make k false in
            let ok = ref true in
            Array.iteri
              (fun pid pc ->
                if pc = 2 then begin
                  let nm = s.name.(pid) in
                  if nm >= 0 && nm < k then
                    if seen.(nm) then ok := false else seen.(nm) <- true
                end)
              s.pc;
            !ok );
        ( "scan cursor within bits",
          fun s ->
            let ok = ref true in
            Array.iteri (fun pid pc -> if pc = 1 && s.name.(pid) > k - 1 then ok := false) s.pc;
            !ok ) ]

    let step_invariants = []
  end)
