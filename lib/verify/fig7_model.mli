(** Explicit-state model of Figure 7's long-lived renaming (the test-and-set
    name scan), with crash transitions.

    The model runs [procs] concurrent processes against a name space of size
    [k].  With [procs <= k] — the precondition the enclosing k-exclusion
    establishes — names are unique, in range, and every scan terminates
    within the bits.  Running the model with [procs = k+1] (precondition
    broken) exhibits a name collision: the executable justification for the
    k-exclusion wrapper. *)

type variant =
  | Faithful
  | No_clear  (** mutant: release does not clear the name's bit *)

type state

val model :
  ?variant:variant -> procs:int -> k:int -> max_crashes:int -> unit ->
  (module System.MODEL with type state = state)

val holding : state -> int -> bool
(** The process is in its critical section holding a name. *)

val held_name : state -> int -> int option
(** The name held by the process, when {!holding}; lets external checkers
    (e.g. the analysis sanitizer's duplicate-name check, run through
    [Explore.hunt]'s [?on_step]) observe name assignments. *)

val scanning : state -> int -> bool
val crash_count : state -> int
