(* Bechamel microbenchmarks of the real-atomics runtime: single-domain
   acquire/release latency of every lock algorithm, renaming, the universal
   construction and the full resilient object.

   One Test.make per measured operation; all grouped into a single run.  On
   a one-core container these are uncontended latencies — the scalability
   story lives in the simulator experiments (the paper's own metric). *)

module Out = Measure
open Bechamel
open Toolkit

let lock_test name algo =
  let lock = Kex_runtime.Kex_lock.create ~algo ~n:64 ~k:4 () in
  Test.make ~name
    (Staged.stage (fun () ->
         Kex_runtime.Kex_lock.acquire lock ~pid:7;
         Kex_runtime.Kex_lock.release lock ~pid:7))

let assignment_test () =
  let asg = Kex_runtime.Kex_lock.Assignment.create ~n:64 ~k:4 () in
  Test.make ~name:"assignment acquire/release"
    (Staged.stage (fun () ->
         let name = Kex_runtime.Kex_lock.Assignment.acquire asg ~pid:7 in
         Kex_runtime.Kex_lock.Assignment.release asg ~pid:7 ~name))

let renaming_test () =
  let r = Kex_runtime.Renaming.create ~k:4 in
  Test.make ~name:"renaming acquire/release"
    (Staged.stage (fun () ->
         let name = Kex_runtime.Renaming.acquire r in
         Kex_runtime.Renaming.release r ~name))

let universal_test () =
  let u =
    Kex_resilient.Universal.create ~k:4 ~init:0 ~apply:(fun s (`Add d) -> (s + d, s + d))
  in
  Test.make ~name:"universal op"
    (Staged.stage (fun () -> ignore (Kex_resilient.Universal.perform u ~tid:1 (`Add 1))))

let resilient_test () =
  let obj =
    Kex_resilient.Resilient.create ~n:64 ~k:4 ~init:0
      ~apply:(fun s (`Add d) -> (s + d, s + d))
      ()
  in
  Test.make ~name:"resilient object op"
    (Staged.stage (fun () -> ignore (Kex_resilient.Resilient.perform obj ~pid:7 (`Add 1))))

let mcs_test () =
  let lock = Kex_runtime.Mcs.create ~n:64 in
  Test.make ~name:"mcs lock (k=1 target)"
    (Staged.stage (fun () ->
         Kex_runtime.Mcs.acquire lock ~pid:7;
         Kex_runtime.Mcs.release lock ~pid:7))

(* Wire codec: encode/decode cost per frame on both framings, over reused
   buffers — the per-op cost the binary wire exists to shrink.  Decoders
   persist across iterations, so the scratch-buffer reuse (no per-frame
   allocation) is what's being measured. *)
let codec_tests () =
  let module P = Kex_service.Protocol in
  let key = "k00001234" in
  let value = String.make 64 'v' in
  let buf = Buffer.create 512 in
  let enc name wire req =
    Test.make ~name
      (Staged.stage (fun () ->
           Buffer.clear buf;
           P.encode_request_wire buf wire ~id:(Some 7) req))
  in
  let dec_req name wire req =
    let frame =
      let b = Buffer.create 64 in
      P.encode_request_wire b wire ~id:(Some 7) req;
      Buffer.contents b
    in
    let dec = P.Req_decoder.create () in
    Test.make ~name
      (Staged.stage (fun () ->
           P.Req_decoder.feed dec frame;
           match P.Req_decoder.next dec with
           | P.Dec_frame _ -> ()
           | _ -> failwith "codec bench: frame did not decode"))
  in
  let dec_resp name wire resp =
    let frame =
      let b = Buffer.create 128 in
      P.encode_response_wire b wire ~id:(Some 7) resp;
      Buffer.contents b
    in
    let dec = P.Resp_decoder.create wire in
    Test.make ~name
      (Staged.stage (fun () ->
           P.Resp_decoder.feed dec frame;
           match P.Resp_decoder.next dec with
           | P.Dec_frame _ -> ()
           | _ -> failwith "codec bench: response did not decode"))
  in
  Test.make_grouped ~name:"codec"
    [ enc "text encode GET" P.Text (P.Get key);
      enc "bin encode GET" P.Binary (P.Get key);
      enc "text encode SET" P.Text (P.Set (key, value));
      enc "bin encode SET" P.Binary (P.Set (key, value));
      dec_req "text decode GET" P.Text (P.Get key);
      dec_req "bin decode GET" P.Binary (P.Get key);
      dec_req "text decode SET" P.Text (P.Set (key, value));
      dec_req "bin decode SET" P.Binary (P.Set (key, value));
      dec_resp "text decode VAL" P.Text (P.Value (Some value));
      dec_resp "bin decode VAL" P.Binary (P.Value (Some value)) ]

(* Reactor plumbing: the mailbox push+drain pair every worker→connection
   delivery pays, and the self-pipe roundtrip that the wakeup dedup exists
   to amortize — together they bound the per-response reactor overhead. *)
let reactor_tests () =
  let module M = Kex_service.Reactor.Mailbox in
  let mb = M.create () in
  let mailbox =
    Test.make ~name:"reactor mailbox push+drain"
      (Staged.stage (fun () ->
           M.push mb 1;
           match M.drain mb with
           | [ _ ] -> ()
           | _ -> failwith "mailbox bench: lost a message"))
  in
  let r, w = Unix.pipe () in
  let byte = Bytes.make 1 '!' in
  let wakeup =
    Test.make ~name:"reactor wakeup pipe roundtrip"
      (Staged.stage (fun () ->
           ignore (Unix.write w byte 0 1);
           ignore (Unix.read r byte 0 1)))
  in
  Test.make_grouped ~name:"reactor" [ mailbox; wakeup ]

let tests () =
  Test.make_grouped ~name:"runtime"
    [ mcs_test ();
      lock_test "lock naive" Kex_runtime.Kex_lock.Naive;
      lock_test "lock inductive" Kex_runtime.Kex_lock.Inductive;
      lock_test "lock tree" Kex_runtime.Kex_lock.Tree;
      lock_test "lock fastpath" Kex_runtime.Kex_lock.Fast_path;
      lock_test "lock dsm-fastpath (fig6)" Kex_runtime.Kex_lock.Dsm_fast_path;
      lock_test "lock graceful" Kex_runtime.Kex_lock.Graceful;
      assignment_test ();
      renaming_test ();
      universal_test ();
      resilient_test () ]

let run () =
  Out.section "RT: Bechamel microbenchmarks (single-domain latency, ns/op)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (tests ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with Some (v :: _) -> v | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) -> Out.row "  %-32s %10.1f ns/op@." name ns)
    (List.sort compare rows);
  Out.section "RT: wire codec microbench (encode/decode, ops/s)";
  let codec_raw = Benchmark.all cfg Instance.[ monotonic_clock ] (codec_tests ()) in
  let codec_results = Analyze.all ols Instance.monotonic_clock codec_raw in
  let codec_rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with Some (v :: _) -> v | Some [] | None -> nan
        in
        (name, ns) :: acc)
      codec_results []
  in
  List.iter
    (fun (name, ns) ->
      Out.row "  %-32s %10.1f ns/op %10.2f Mops/s@." name ns (1000. /. ns))
    (List.sort compare codec_rows);
  Out.section "RT: reactor plumbing microbench (mailbox + wakeup pipe, ns/op)";
  let reactor_raw = Benchmark.all cfg Instance.[ monotonic_clock ] (reactor_tests ()) in
  let reactor_results = Analyze.all ols Instance.monotonic_clock reactor_raw in
  let reactor_rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with Some (v :: _) -> v | Some [] | None -> nan
        in
        (name, ns) :: acc)
      reactor_results []
  in
  List.iter
    (fun (name, ns) -> Out.row "  %-32s %10.1f ns/op@." name ns)
    (List.sort compare reactor_rows)
