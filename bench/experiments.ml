(* One section per table/figure of the paper's evaluation (see DESIGN.md's
   experiment index).  Each prints the series the paper reports next to our
   measured values; "bound" columns are the paper's analytic results. *)

open Kexclusion.Import
open Measure
module Registry = Kexclusion.Registry
module Spec = Kexclusion.Spec

let cc = Cost_model.Cache_coherent
let dsm = Cost_model.Distributed

(* ------------------------------- Table 1 -------------------------------- *)

let table1 () =
  let n = 32 and k = 4 in
  section (Printf.sprintf "T1 / Table 1: comparison of k-exclusion algorithms (n=%d, k=%d)" n k);
  row "  %-26s %-28s %-28s %s@." "algorithm (Table 1 row)" "w/o contention (c=1)"
    "with contention (c=n)" "paper: w/ | w/o";
  let entry label ~model algo ~paper_with ~paper_without =
    let solo = refs ~model algo ~n ~k ~c:1 () in
    let full = refs ~model algo ~n ~k ~c:n () in
    row "  %-26s %-28s %-28s %s | %s@." label
      (Format.asprintf "%a" pp_point solo)
      (Format.asprintf "%a" pp_point full)
      paper_with paper_without
  in
  entry "[9,10] queue (Fig 1)" ~model:cc Registry.Queue ~paper_with:"unbounded"
    ~paper_without:"O(1)";
  entry "[1,8] read/write bakery" ~model:cc Registry.Bakery ~paper_with:"unbounded"
    ~paper_without:"O(N)";
  entry "Thm 3: CC fast path" ~model:cc Registry.Fast_path
    ~paper_with:(Printf.sprintf "7k(log N/k +1)+2 = %d" (Spec.thm3_high ~n ~k))
    ~paper_without:(Printf.sprintf "7k+2 = %d" (Spec.thm3_low ~k));
  entry "Thm 7: DSM fast path" ~model:dsm Registry.Fast_path
    ~paper_with:(Printf.sprintf "14k(log N/k +1)+2 = %d" (Spec.thm7_high ~n ~k))
    ~paper_without:(Printf.sprintf "14k+2 = %d" (Spec.thm7_low ~k));
  (* The "unbounded" entries of Table 1 are about growth with waiting time:
     stretch the critical-section dwell and watch the baselines grow while
     the paper's algorithms stay put.  With per-cell charging of atomic
     blocks the CC queue's polling hits its cached copies between queue
     events — its blow-up is contention-driven (see the c=1 vs c=n columns
     above), while on DSM every poll of the unowned queue cells stays remote
     and the dwell growth shows directly. *)
  row "  --- growth with CS dwell time (c=n, dwell 2 vs 60) ---@.";
  let dwell label ~model algo =
    let short = refs ~cs_delay:2 ~model algo ~n ~k ~c:n () in
    let long = refs ~cs_delay:60 ~model algo ~n ~k ~c:n () in
    row "  %-26s dwell=2: max %4d   dwell=60: max %4d   %s@." label short.max long.max
      (if long.max > short.max + 30 then "grows (unbounded)" else "flat (local spin)")
  in
  dwell "[9,10] queue (CC)" ~model:cc Registry.Queue;
  dwell "[9,10] queue (DSM)" ~model:dsm Registry.Queue;
  dwell "[1,8] bakery" ~model:dsm Registry.Bakery;
  dwell "Thm 3: CC fast path" ~model:cc Registry.Fast_path;
  dwell "Thm 7: DSM fast path" ~model:dsm Registry.Fast_path

(* --------------------------- Theorem sweeps ----------------------------- *)

let sweep_n ~title ~model algo ~k ~ns ~bound =
  section title;
  row "  %-8s %-22s %s@." "N" "measured (full contention)" "bound";
  List.iter
    (fun n ->
      let p = refs ~iterations:2 ~model algo ~n ~k ~c:n ~budget:80_000_000 () in
      bound_row ~label:(Printf.sprintf "N=%d" n) ~measured:p ~bound:(bound ~n ~k))
    ns

let sweep_c ~title ~model algo ~n ~k ~cs ~bound =
  section title;
  row "  %-8s %-22s %s@." "c" "measured (contention<=c)" "bound";
  List.iter
    (fun c ->
      let p = refs ~iterations:3 ~model algo ~n ~k ~c ~budget:80_000_000 () in
      bound_row ~label:(Printf.sprintf "c=%d" c) ~measured:p ~bound:(bound ~c))
    cs

let thm1 () =
  sweep_n
    ~title:"E-Thm1: CC inductive, 7(N-k) (linear in N)"
    ~model:cc Registry.Inductive ~k:4
    ~ns:[ 8; 16; 24; 32; 48; 64 ]
    ~bound:(fun ~n ~k -> Spec.thm1 ~n ~k)

let thm2 () =
  sweep_n
    ~title:"E-Thm2: CC tree, 7k*ceil(log2 N/k) (logarithmic in N)"
    ~model:cc Registry.Tree ~k:4
    ~ns:[ 8; 16; 32; 64; 128 ]
    ~bound:(fun ~n ~k -> Spec.thm2 ~n ~k)

let thm3 () =
  let n = 64 and k = 4 in
  sweep_c
    ~title:
      (Printf.sprintf
         "E-Thm3: CC fast path, N=%d k=%d — flat at 7k+2=%d until c>k, then <= %d" n k
         (Spec.thm3_low ~k) (Spec.thm3_high ~n ~k))
    ~model:cc Registry.Fast_path ~n ~k
    ~cs:[ 1; 2; 4; 8; 16; 32; 64 ]
    ~bound:(fun ~c -> if c <= k then Spec.thm3_low ~k else Spec.thm3_high ~n ~k)

let thm4 () =
  let n = 64 and k = 4 in
  sweep_c
    ~title:
      (Printf.sprintf "E-Thm4: CC graceful, N=%d k=%d — ceil(c/k)(7k+2) (linear in c)" n k)
    ~model:cc Registry.Graceful ~n ~k
    ~cs:[ 1; 4; 8; 12; 16; 24; 32 ]
    ~bound:(fun ~c -> Spec.thm4 ~k ~c)

let thm5 () =
  sweep_n
    ~title:"E-Thm5: DSM inductive, 14(N-k) (linear in N)"
    ~model:dsm Registry.Inductive ~k:4
    ~ns:[ 8; 16; 24; 32; 48; 64 ]
    ~bound:(fun ~n ~k -> Spec.thm5 ~n ~k)

let thm6 () =
  sweep_n
    ~title:"E-Thm6: DSM tree, 14k*ceil(log2 N/k) (logarithmic in N)"
    ~model:dsm Registry.Tree ~k:4
    ~ns:[ 8; 16; 32; 64; 128 ]
    ~bound:(fun ~n ~k -> Spec.thm6 ~n ~k)

let thm7 () =
  let n = 64 and k = 4 in
  sweep_c
    ~title:
      (Printf.sprintf
         "E-Thm7: DSM fast path, N=%d k=%d — flat at 14k+2=%d until c>k, then <= %d" n k
         (Spec.thm7_low ~k) (Spec.thm7_high ~n ~k))
    ~model:dsm Registry.Fast_path ~n ~k
    ~cs:[ 1; 2; 4; 8; 16; 32; 64 ]
    ~bound:(fun ~c -> if c <= k then Spec.thm7_low ~k else Spec.thm7_high ~n ~k)

let thm8 () =
  let n = 64 and k = 4 in
  sweep_c
    ~title:
      (Printf.sprintf "E-Thm8: DSM graceful, N=%d k=%d — ceil(c/k)(14k+2) (linear in c)" n k)
    ~model:dsm Registry.Graceful ~n ~k
    ~cs:[ 1; 4; 8; 12; 16; 24; 32 ]
    ~bound:(fun ~c -> Spec.thm8 ~k ~c)

let assignment_thm ~title ~model ~low ~high () =
  let n = 64 and k = 4 in
  section title;
  let p_low = refs_assignment ~model Registry.Fast_path ~n ~k ~c:k () in
  bound_row ~label:(Printf.sprintf "c=k=%d" k) ~measured:p_low ~bound:(low ~k);
  let p_high = refs_assignment ~model Registry.Fast_path ~n ~k ~c:n ~budget:80_000_000 () in
  bound_row ~label:(Printf.sprintf "c=N=%d" n) ~measured:p_high ~bound:(high ~n ~k);
  (* the renaming increment itself *)
  let plain = refs ~model Registry.Fast_path ~n ~k ~c:k () in
  row "  renaming adds <= k refs: plain max %d, assignment max %d (delta %d <= %d)@."
    plain.max p_low.max (p_low.max - plain.max) k

let thm9 =
  assignment_thm
    ~title:"E-Thm9: CC (N,k)-assignment = fast path + Figure 7 renaming (+k refs)"
    ~model:cc
    ~low:(fun ~k -> Spec.thm9_low ~k)
    ~high:(fun ~n ~k -> Spec.thm9_high ~n ~k)

let thm10 =
  assignment_thm
    ~title:"E-Thm10: DSM (N,k)-assignment = fast path + Figure 7 renaming (+k refs)"
    ~model:dsm
    ~low:(fun ~k -> Spec.thm10_low ~k)
    ~high:(fun ~n ~k -> Spec.thm10_high ~n ~k)

(* ------------------------------ Figure 3 -------------------------------- *)

let fig3 () =
  let n = 64 and k = 4 in
  section
    (Printf.sprintf
       "F3 / Figure 3: tree (a) vs fast path (b) vs nested fast paths, CC, N=%d k=%d" n k);
  row "  %-6s %12s %12s %12s@." "c" "tree" "fastpath" "graceful";
  List.iter
    (fun c ->
      let m algo = (refs ~model:cc algo ~n ~k ~c ~budget:80_000_000 ()).max in
      row "  %-6d %12d %12d %12d@." c (m Registry.Tree) (m Registry.Fast_path)
        (m Registry.Graceful))
    [ 1; 2; 4; 8; 16; 32; 64 ];
  row "  (fast path wins while c <= k; tree cost is flat; graceful interpolates)@."

(* ----------------------------- Resilience ------------------------------- *)

let resilience () =
  let n = 16 and k = 4 in
  section
    (Printf.sprintf
       "R1 / Section 1: resiliency — f crashes inside the CS, N=%d k=%d (tolerates f <= %d)" n
       k (k - 1));
  row "  %-10s %-12s %-30s@." "failures" "outcome" "nonfaulty completions";
  List.iter
    (fun f ->
      let failures = List.init f (fun pid -> (pid, Kex_sim.Failures.In_cs 1)) in
      let res =
        run_workload ~iterations:3 ~budget:2_000_000 ~failures ~model:cc ~n ~k ~c:n
          (fun mem ->
            Kexclusion.Protocol.workload
              (Registry.build mem ~model:cc Registry.Graceful ~n ~k))
      in
      let completed =
        Array.fold_left
          (fun acc (p : Runner.proc_stats) -> if p.completed then acc + 1 else acc)
          0 res.procs
      in
      let outcome =
        if res.violations <> [] then "UNSAFE"
        else if res.stalled then "blocked"
        else "all done"
      in
      row "  f=%-8d %-12s %d/%d %s@." f outcome completed (n - f)
        (if f <= k - 1 then "(within resilience)" else "(beyond resilience — expected to block)"))
    [ 0; 1; 2; 3; 4 ]

(* ------------------------------ Ablations ------------------------------- *)

(* Section 5 of the paper: k-exclusion performance should approach the
   fastest spin locks (MCS, reference [12]) as k -> 1.  Measure the gap. *)
let ablation_k1 () =
  let n = 32 in
  section
    (Printf.sprintf
       "A1 / Section 5: k=1 — the paper's algorithms vs the MCS queue lock [12], N=%d" n);
  row "  %-6s %-22s %10s %10s %10s %10s %10s@." "model" "contention" "mcs" "peterson" "tree"
    "fastpath" "graceful";
  List.iter
    (fun (model, mname) ->
      List.iter
        (fun c ->
          let baseline build label =
            let res = run_workload ~iterations:3 ~model ~n ~k:1 ~c build in
            check label res;
            (point_of res).max
          in
          let mcs =
            baseline
              (fun mem -> Kexclusion.Protocol.workload (Kexclusion.Mcs_lock.create mem ~n))
              "mcs"
          in
          let peterson =
            baseline
              (fun mem -> Kexclusion.Protocol.workload (Kexclusion.Peterson.create mem ~n))
              "peterson"
          in
          let m algo = (refs ~model algo ~n ~k:1 ~c ~budget:80_000_000 ()).max in
          row "  %-6s %-22s %10d %10d %10d %10d %10d@." mname
            (if c = 1 then "none (c=1)" else Printf.sprintf "full (c=%d)" c)
            mcs peterson (m Registry.Tree) (m Registry.Fast_path) (m Registry.Graceful))
        [ 1; n ])
    [ (cc, "CC"); (dsm, "DSM") ];
  row "  (MCS is the non-resilient target; the k-exclusion algorithms pay a@.";
  row "   log N / nesting factor for (k-1)-resilience — the open gap of Sec. 5)@."

(* The fast-path gate is the whole difference between Thm 2 and Thm 3 at low
   contention: measure with and without it. *)
let ablation_gate () =
  let n = 64 and k = 4 in
  section "A2: what the fast-path gate buys — tree alone vs gate+tree, CC, c<=k";
  List.iter
    (fun c ->
      let tree = (refs ~model:cc Registry.Tree ~n ~k ~c ()).max in
      let fp = (refs ~model:cc Registry.Fast_path ~n ~k ~c ()).max in
      row "  c=%-4d tree %3d vs fast path %3d  (gate saves %d refs/acq)@." c tree fp (tree - fp))
    [ 1; 2; 4 ]

(* The renaming trade-off: Figure 7's TAS scan (long-lived, name space
   exactly k) vs the companion paper [13]'s splitter grid (read/write only,
   wait-free, one-shot, name space k(k+1)/2). *)
let renaming_cmp () =
  section "A3: renaming — Figure 7 (test-and-set) vs splitter grid [13] (read/write)";
  row "  %-6s %-26s %-30s@." "k" "fig7: names, max refs/acq" "splitter: names, max refs (one-shot)";
  List.iter
    (fun k ->
      (* Figure 7 at full k concurrency *)
      let fig7_cost =
        let res =
          run_workload ~iterations:4 ~cs_delay:3 ~model:cc ~n:k ~k ~c:k (fun mem ->
              let r = Kexclusion.Renaming.create mem ~k in
              Kexclusion.Protocol.named_workload
                { Kexclusion.Protocol.assignment_name = "fig7";
                  acquire = (fun ~pid:_ -> Kexclusion.Renaming.acquire r);
                  release = (fun ~pid:_ ~name -> Kexclusion.Renaming.release r ~name) })
        in
        check "fig7-renaming" res;
        (point_of res).max
      in
      let splitter_cost =
        let res =
          run_workload ~iterations:1 ~cs_delay:1 ~model:cc ~n:k ~k ~c:k (fun mem ->
              let t = Kexclusion.Splitter_renaming.create mem ~k in
              { Runner.acquire = (fun ~pid -> Kexclusion.Splitter_renaming.acquire t ~pid);
                release = (fun ~pid:_ ~name:_ -> Kex_sim.Op.return ());
                check_names = false; cs_body = None })
        in
        check "splitter-renaming" res;
        (point_of res).max
      in
      row "  %-6d %-26s %-30s@." k
        (Printf.sprintf "%d names, %d refs" k fig7_cost)
        (Printf.sprintf "%d names, %d refs"
           (Kexclusion.Splitter_renaming.name_space ~k)
           splitter_cost))
    [ 2; 4; 8; 16 ];
  row "  (fig7: optimal name space, needs TAS; splitter: read/write only,@.";
  row "   wait-free, but k(k+1)/2 names and one-shot)@."

(* The full Section 1 methodology measured in the paper's own metric: remote
   references per resilient-object operation (wrapper entry + wait-free op +
   wrapper exit), with contention and crash sweeps. *)
let methodology () =
  let n = 32 and k = 4 in
  let counter st op = (st + op, st + op) in
  let build mem ~model =
    Kexclusion.Methodology.create mem ~model ~algo:Kexclusion.Registry.Fast_path ~n ~k ~init:0
      ~apply:counter ~op:(fun ~pid:_ -> 1)
  in
  section
    (Printf.sprintf
       "R2 / Section 1: resilient counter = fast path + renaming + wait-free object, N=%d k=%d"
       n k);
  row "  %-6s %-6s %-24s %s@." "model" "c" "refs/operation" "note";
  List.iter
    (fun (model, mname) ->
      List.iter
        (fun c ->
          let mem = Memory.create () in
          let m = build mem ~model in
          let cost = Cost_model.create model ~n_procs:n in
          let cfg =
            Runner.config ~n ~k ~iterations:3 ~cs_delay:1
              ~participants:(List.init c Fun.id) ~step_budget:20_000_000 ()
          in
          let res = Runner.run cfg mem cost (Kexclusion.Methodology.workload m) in
          note_steps res;
          check "methodology" res;
          let p = point_of res in
          row "  %-6s %-6d %-24s %s@." mname c
            (Format.asprintf "%a" pp_point p)
            (if c <= k then "effectively wait-free (no waiting at the wrapper)" else ""))
        [ 1; k; n ])
    [ (cc, "CC"); (dsm, "DSM") ];
  (* crash sweep: f processes die mid-operation *)
  row "  --- crashes in the middle of an operation (CC, c=n) ---@.";
  List.iter
    (fun f ->
      let failures =
        List.init f (fun pid ->
            (pid, Kex_sim.Failures.In_cs_after { acquisition = 1; after_steps = 2 + pid }))
      in
      let mem = Memory.create () in
      let m = build mem ~model:cc in
      let cost = Cost_model.create cc ~n_procs:n in
      let cfg =
        Runner.config ~n ~k ~iterations:2 ~cs_delay:1 ~failures ~step_budget:20_000_000 ()
      in
      let res = Runner.run cfg mem cost (Kexclusion.Methodology.workload m) in
      note_steps res;
      let completed =
        Array.fold_left
          (fun acc (p : Runner.proc_stats) -> if p.completed then acc + 1 else acc)
          0 res.procs
      in
      row "  f=%-4d %-12s survivors completed %d/%d, operations linearized %d@." f
        (if res.violations <> [] then "UNSAFE"
         else if res.stalled then "blocked"
         else "all done")
        completed (n - f)
        (Kexclusion.Universal_sim.applied_count (Kexclusion.Methodology.inner m) mem))
    [ 0; 1; 3; 4 ];
  row "  (f <= %d: survivors finish and dead half-done ops are completed by helpers;@." (k - 1);
  row "   f = %d exhausts the wrapper slots — the documented resilience boundary)@." k

(* ------------------------------ registry -------------------------------- *)

let all : (string * (unit -> unit)) list =
  [ ("table1", table1);
    ("thm1", thm1);
    ("thm2", thm2);
    ("thm3", thm3);
    ("thm4", thm4);
    ("thm5", thm5);
    ("thm6", thm6);
    ("thm7", thm7);
    ("thm8", thm8);
    ("thm9", thm9);
    ("thm10", thm10);
    ("fig3", fig3);
    ("ablation-k1", ablation_k1);
    ("ablation-gate", ablation_gate);
    ("renaming", renaming_cmp);
    ("resilience", resilience);
    ("methodology", methodology) ]
