(* Simulator-side measurement helpers shared by every experiment.  The
   measured quantity is the paper's own metric: remote memory references per
   critical-section acquisition (entry + exit), max and mean over all
   completed acquisitions. *)

open Kexclusion.Import

type point = { max : int; mean : float; p50 : int; p99 : int }

let pp_point ppf p =
  Format.fprintf ppf "max %3d mean %6.1f p50 %3d p99 %3d" p.max p.mean p.p50 p.p99

(* Per-domain output and stats context.  bench/main.ml buffers each
   experiment's output so -j N can fan experiments across domains and still
   print results in submission order, byte-identical to a sequential run;
   the same context accumulates the headline numbers for the BENCH_sim.json
   emitter.  Domain-local so worker domains never share a formatter. *)
type collected = {
  mutable steps : int;  (* simulator steps across every run in this context *)
  mutable points : (string * point) list;  (* checked runs, reversed *)
}

let context =
  Domain.DLS.new_key (fun () -> (Format.std_formatter, { steps = 0; points = [] }))

let set_context ppf = Domain.DLS.set context (ppf, { steps = 0; points = [] })
let formatter () = fst (Domain.DLS.get context)

let collected () =
  let c = snd (Domain.DLS.get context) in
  (c.steps, List.rev c.points)

let note_steps (res : Runner.result) =
  let c = snd (Domain.DLS.get context) in
  c.steps <- c.steps + res.total_steps

let run_workload ?(iterations = 3) ?(cs_delay = 2) ?(budget = 0) ?failures ~model ~n ~k ~c
    build =
  let mem = Memory.create () in
  let workload = build mem in
  let cost = Cost_model.create model ~n_procs:n in
  let cfg =
    Runner.config ~n ~k ~iterations ~cs_delay ?failures
      ~participants:(List.init c Fun.id) ~step_budget:budget ()
  in
  let res = Runner.run cfg mem cost workload in
  note_steps res;
  res

let point_of res =
  let s = Kex_sim.Stats.summarize res in
  { max = s.Kex_sim.Stats.max_remote; mean = s.mean_remote; p50 = s.p50_remote;
    p99 = s.p99_remote }

let check label (res : Runner.result) =
  if not res.ok then
    failwith
      (Printf.sprintf "experiment %s: run failed (%s)" label
         (if res.stalled then "stalled" else String.concat "; " res.violations))
  else begin
    let c = snd (Domain.DLS.get context) in
    c.points <- (label, point_of res) :: c.points
  end

let refs ?iterations ?cs_delay ?budget ~model algo ~n ~k ~c () =
  let res =
    run_workload ?iterations ?cs_delay ?budget ~model ~n ~k ~c (fun mem ->
        Kexclusion.Protocol.workload (Kexclusion.Registry.build mem ~model algo ~n ~k))
  in
  check (Kexclusion.Registry.algo_name algo) res;
  point_of res

let refs_assignment ?iterations ?cs_delay ?budget ~model algo ~n ~k ~c () =
  let res =
    run_workload ?iterations ?cs_delay ?budget ~model ~n ~k ~c (fun mem ->
        Kexclusion.Protocol.named_workload
          (Kexclusion.Registry.build_assignment mem ~model algo ~n ~k))
  in
  check (Kexclusion.Registry.algo_name algo ^ "+assignment") res;
  point_of res

let section title =
  Format.fprintf (formatter ()) "@.=== %s ===@." title

let row fmt = Format.fprintf (formatter ()) fmt

let ok_str within = if within then "ok" else "EXCEEDED"

let bound_row ~label ~measured ~bound =
  row "  %-24s measured %-22s bound %4d   [%s]@." label
    (Format.asprintf "%a" pp_point measured)
    bound
    (ok_str (measured.max <= bound))
