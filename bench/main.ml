(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md, section 4, for the experiment index) plus
   Bechamel microbenchmarks of the real-atomics runtime.

     dune exec bench/main.exe                      # everything
     dune exec bench/main.exe -- thm3 fig3         # selected experiments
     dune exec bench/main.exe -- all-sim -j 4      # sim experiments, 4 domains
     dune exec bench/main.exe -- all-sim --json BENCH_sim.json
     dune exec bench/main.exe -- --list            # available ids

   Every simulator experiment is seeded and deterministic, and each one's
   output is buffered and printed in submission order, so stdout is
   byte-identical whatever -j says.  The pseudo-id "all-sim" expands to all
   simulator experiments; "micro" (wall-clock microbenchmarks, inherently
   noisy) always runs on the main domain and is not part of all-sim. *)

type task = Sim of (unit -> unit) | Micro

type finished = {
  output : string;
  wall_s : float;
  steps : int;
  points : (string * Measure.point) list;
  error : (exn * Printexc.raw_backtrace) option;
}

(* Run one simulator experiment with output buffered and stats collected in
   the calling domain's context (Measure.set_context). *)
let run_sim f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Measure.set_context ppf;
  let t0 = Unix.gettimeofday () in
  let error =
    try
      f ();
      None
    with e -> Some (e, Printexc.get_raw_backtrace ())
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Format.pp_print_flush ppf ();
  let steps, points = Measure.collected () in
  { output = Buffer.contents buf; wall_s; steps; points; error }

(* Print a finished experiment's (possibly partial) output, then re-raise
   its failure if it had one — same abort behaviour as running unbuffered. *)
let deliver r =
  print_string r.output;
  flush stdout;
  match r.error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* ------------------------------ JSON emitter ----------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_json file ~jobs ~baseline ~wall tasks results =
  let oc = open_out file in
  let out fmt = Printf.fprintf oc fmt in
  let rate steps s = if s > 0. then float_of_int steps /. s else 0. in
  out "{\n";
  out "  \"schema\": \"kexclusion-bench/v2\",\n";
  out "  \"git_rev\": \"%s\",\n" (json_escape (Kex_service.Provenance.git_rev ()));
  out "  \"hostname\": \"%s\",\n" (json_escape (Kex_service.Provenance.hostname ()));
  out "  \"ocaml\": \"%s\",\n" (json_escape Sys.ocaml_version);
  out "  \"jobs\": %d,\n" jobs;
  (match baseline with
  | Some b ->
      out "  \"baseline_wall_s\": %.3f,\n" b;
      if wall > 0. then out "  \"speedup_vs_baseline\": %.2f,\n" (b /. wall)
  | None -> ());
  let total_steps =
    Array.fold_left (fun acc r -> match r with Some r -> acc + r.steps | None -> acc) 0 results
  in
  out "  \"total\": { \"wall_s\": %.3f, \"steps\": %d, \"steps_per_sec\": %.0f },\n" wall
    total_steps (rate total_steps wall);
  out "  \"experiments\": [";
  let first = ref true in
  Array.iteri
    (fun i (id, t) ->
      match (t, results.(i)) with
      | Sim _, Some r ->
          if not !first then out ",";
          first := false;
          out "\n    { \"id\": \"%s\", \"wall_s\": %.3f, \"steps\": %d, \"steps_per_sec\": %.0f,\n"
            (json_escape id) r.wall_s r.steps (rate r.steps r.wall_s);
          out "      \"points\": [";
          List.iteri
            (fun j (label, (p : Measure.point)) ->
              if j > 0 then out ",";
              out "\n        { \"label\": \"%s\", \"max\": %d, \"mean\": %.2f, \"p50\": %d, \"p99\": %d }"
                (json_escape label) p.max p.mean p.p50 p.p99)
            r.points;
          if r.points <> [] then out "\n      ";
          out "] }"
      | _ -> ())
    tasks;
  out "\n  ]\n}\n";
  close_out oc

(* --------------------------------- driver -------------------------------- *)

let () =
  (* The simulator's monadic interpreter allocates a continuation per step;
     a larger minor heap keeps that churn out of the major collector. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let sim_ids = List.map fst Experiments.all in
  let available = sim_ids @ [ "micro" ] in
  let jobs = ref 1 and json = ref None and baseline = ref None in
  let ids = ref [] and list_only = ref false in
  let rec parse = function
    | [] -> ()
    | "--list" :: rest ->
        list_only := true;
        parse rest
    | [ (("-j" | "--json" | "--baseline") as flag) ] ->
        Printf.eprintf "%s needs an argument\n" flag;
        exit 2
    | "-j" :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | "--json" :: f :: rest ->
        json := Some f;
        parse rest
    | "--baseline" :: s :: rest ->
        baseline := Some (float_of_string s);
        parse rest
    | id :: rest ->
        ids := id :: !ids;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_only then List.iter print_endline (available @ [ "all-sim" ])
  else begin
    let selected = match List.rev !ids with [] -> available | l -> l in
    let selected =
      List.concat_map (fun id -> if id = "all-sim" then sim_ids else [ id ]) selected
    in
    let tasks =
      List.map
        (fun id ->
          match List.assoc_opt id Experiments.all with
          | Some f -> (id, Sim f)
          | None ->
              if id = "micro" then (id, Micro)
              else begin
                Printf.eprintf "unknown experiment %S; use --list\n" id;
                exit 2
              end)
        selected
      |> Array.of_list
    in
    let n = Array.length tasks in
    let results : finished option array = Array.make n None in
    let jobs = max 1 !jobs in
    let t0 = Unix.gettimeofday () in
    if jobs = 1 then
      Array.iteri
        (fun i (_, t) ->
          match t with
          | Sim f ->
              let r = run_sim f in
              results.(i) <- Some r;
              deliver r
          | Micro -> Micro.run ())
        tasks
    else begin
      (* Fan the simulator experiments out across domains.  Workers claim
         task indices from a shared counter; each result slot is written by
         exactly one worker and read only after the joins, so the array
         needs no further synchronisation. *)
      let next = Atomic.make 0 in
      let worker () =
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (match tasks.(i) with
            | _, Sim f -> results.(i) <- Some (run_sim f)
            | _, Micro -> ());
            go ()
          end
        in
        go ()
      in
      let helpers = List.init (min (jobs - 1) (max 0 (n - 1))) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join helpers;
      Array.iteri
        (fun i (_, t) ->
          match t with
          | Sim _ -> deliver (Option.get results.(i))
          | Micro -> Micro.run ())
        tasks
    end;
    let wall = Unix.gettimeofday () -. t0 in
    Format.printf "@.done.@.";
    match !json with
    | None -> ()
    | Some file -> emit_json file ~jobs ~baseline:!baseline ~wall tasks results
  end
