(* A (k-1)-resilient key-value service: N worker domains bang on a shared
   store; one of them crashes while holding an admission slot.  The store
   stays available through the remaining k-1 slots and every surviving
   update is linearized exactly once.

   This is the in-process sketch of the idea; the full networked version —
   the same store behind a TCP socket, with chaos kills and a load
   generator — is `kexd serve` / `kexd loadgen` (lib/service, README
   "Quickstart (network service)", EXPERIMENTS.md §S1).

   Run with: dune exec examples/kv_service.exe *)

let () =
  let n = 6 and k = 3 and updates_per_worker = 300 in
  let store = Kex_resilient.Kv_store.create ~n ~k () in
  (* Worker 0 wedges holding an admission slot — a crash, as far as the
     store can tell.  k-exclusion tolerates k-1 = 2 of these. *)
  let unwedge = Atomic.make false in
  let wedged () =
    let name =
      Kex_runtime.Kex_lock.Assignment.acquire (Kex_resilient.Kv_store.assignment store) ~pid:0
    in
    Printf.printf "worker 0 wedged holding slot %d\n%!" name;
    while not (Atomic.get unwedge) do
      Domain.cpu_relax ()
    done;
    Kex_runtime.Kex_lock.Assignment.release (Kex_resilient.Kv_store.assignment store) ~pid:0
      ~name
  in
  let live pid () =
    for i = 1 to updates_per_worker do
      let key = Printf.sprintf "key-%d" (i mod 10) in
      (* atomic counters per key *)
      Kex_resilient.Kv_store.update store ~pid ~key (fun v ->
          let current = match v with Some s -> int_of_string s | None -> 0 in
          Some (string_of_int (current + 1)))
    done
  in
  let wedged_domain = Domain.spawn wedged in
  let domains = List.init (n - 1) (fun i -> Domain.spawn (live (i + 1))) in
  List.iter Domain.join domains;
  let total =
    List.fold_left
      (fun acc (_, v) -> acc + int_of_string v)
      0
      (Kex_resilient.Kv_store.snapshot store)
  in
  Printf.printf "keys                 : %d\n" (Kex_resilient.Kv_store.size store);
  Printf.printf "sum of counters      : %d (expected %d)\n" total ((n - 1) * updates_per_worker);
  Printf.printf "operations linearized: %d\n" (Kex_resilient.Kv_store.operations store);
  assert (total = (n - 1) * updates_per_worker);
  Atomic.set unwedge true;
  Domain.join wedged_domain;
  print_endline "ok — the store never blocked on the wedged client"
