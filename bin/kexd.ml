(* kexd — command-line driver for the k-exclusion simulator, model checker
   and the networked resilient KV service.

     kexd run    --algo fastpath --model cc --n 32 --k 4 --contention 8
     kexd sweep  --algo tree --model dsm --k 4 --over n --values 8,16,32,64
     kexd verify --figure fig2 --n 3 --crashes 2
     kexd serve  --port 7070 --workers 4 --k 2 --chaos kill-worker@5s
     kexd loadgen --port 7070 --connections 4 --duration 5 --mix get=80,set=20
     kexd bench-report BENCH_serve.json

   See DESIGN.md for the experiment catalogue these commands back. *)

open Cmdliner
open Kexclusion.Import

(* ------------------------------ shared args ----------------------------- *)

let model_conv =
  let parse = function
    | "cc" | "cache-coherent" -> Ok Cost_model.Cache_coherent
    | "dsm" | "distributed" -> Ok Cost_model.Distributed
    | s -> Error (`Msg (Printf.sprintf "unknown model %S (use cc or dsm)" s))
  in
  let print ppf m = Cost_model.pp_model ppf m in
  Arg.conv (parse, print)

let algo_conv =
  let parse s =
    match Kexclusion.Registry.algo_of_string s with
    | Some a -> Ok a
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown algorithm %S (use %s)" s
               (String.concat ", " (List.map Kexclusion.Registry.algo_name Kexclusion.Registry.all))))
  in
  let print ppf a = Format.pp_print_string ppf (Kexclusion.Registry.algo_name a) in
  Arg.conv (parse, print)

let model_arg =
  Arg.(value & opt model_conv Cost_model.Cache_coherent & info [ "model" ] ~doc:"cc or dsm")

let algo_arg =
  Arg.(
    value
    & opt algo_conv Kexclusion.Registry.Fast_path
    & info [ "algo" ] ~doc:"queue | bakery | inductive | tree | fastpath | graceful")

let n_arg = Arg.(value & opt int 32 & info [ "n"; "procs" ] ~doc:"number of processes")
let k_arg = Arg.(value & opt int 4 & info [ "k"; "degree" ] ~doc:"exclusion degree")
let iters_arg = Arg.(value & opt int 3 & info [ "iterations" ] ~doc:"acquisitions per process")
let seed_arg = Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"random scheduler seed")

let contention_arg =
  Arg.(value & opt (some int) None & info [ "contention"; "c" ] ~doc:"participating processes")

let assignment_arg =
  Arg.(value & flag & info [ "assignment" ] ~doc:"wrap in (N,k)-assignment (Figure 7 renaming)")

(* ------------------------------- run ------------------------------------ *)

let measure ~model ~algo ~n ~k ~c ~iterations ~seed ~assignment =
  let mem = Memory.create () in
  let workload =
    if assignment then
      Kexclusion.Protocol.named_workload
        (Kexclusion.Registry.build_assignment mem ~model algo ~n ~k)
    else Kexclusion.Protocol.workload (Kexclusion.Registry.build mem ~model algo ~n ~k)
  in
  let cost = Cost_model.create model ~n_procs:n in
  let scheduler = Option.map (fun seed -> Kex_sim.Scheduler.random ~seed) seed in
  let cfg =
    Runner.config ~n ~k ~iterations ~cs_delay:2 ?scheduler
      ~participants:(List.init c Fun.id) ()
  in
  Runner.run cfg mem cost workload

let run_cmd =
  let doc = "run one algorithm under the simulator and report remote references" in
  let run model algo n k iterations seed c assignment =
    let c = Option.value c ~default:n in
    let res = measure ~model ~algo ~n ~k ~c ~iterations ~seed ~assignment in
    let s = Kex_sim.Stats.summarize res in
    Format.printf "algorithm   : %s%s@." (Kexclusion.Registry.algo_name algo)
      (if assignment then " + assignment" else "");
    Format.printf "model       : %a@." Cost_model.pp_model model;
    Format.printf "n=%d k=%d contention<=%d iterations=%d@." n k c iterations;
    Format.printf "result      : %s@."
      (if res.Runner.ok then "ok"
       else if res.stalled then "STALLED"
       else "VIOLATIONS: " ^ String.concat "; " res.violations);
    Format.printf "remote refs : max %d, mean %.1f per acquisition (%d acquisitions)@."
      s.Kex_sim.Stats.max_remote s.mean_remote s.acquisitions;
    (match Kexclusion.Registry.bound ~model algo ~n ~k ~c with
    | Some b -> Format.printf "paper bound : %d%s@." b (if assignment then Printf.sprintf " + %d (renaming)" k else "")
    | None -> Format.printf "paper bound : unbounded under contention@.");
    if res.Runner.ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run $ model_arg $ algo_arg $ n_arg $ k_arg $ iters_arg $ seed_arg $ contention_arg
      $ assignment_arg)

(* ------------------------------- sweep ---------------------------------- *)

let sweep_cmd =
  let doc = "sweep N or contention and print remote-reference series" in
  let over_conv =
    Arg.conv
      ( (function
        | "n" -> Ok `N
        | "contention" | "c" -> Ok `C
        | s -> Error (`Msg (Printf.sprintf "unknown sweep variable %S (use n or contention)" s))),
        fun ppf v -> Format.pp_print_string ppf (match v with `N -> "n" | `C -> "contention") )
  in
  let over_arg = Arg.(value & opt over_conv `N & info [ "over" ] ~doc:"n or contention") in
  let values_arg =
    Arg.(
      value
      & opt (list int) [ 8; 16; 32; 64 ]
      & info [ "values" ] ~doc:"comma-separated sweep values")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"also write the sweep as machine-readable JSON (schema kexclusion-sweep/v1, \
                same point fields as bench/main.ml)")
  in
  let run model algo n k iterations seed over values json =
    Format.printf "%-8s %10s %10s %10s %10s %10s@." "value" "max" "mean" "p50" "p99" "bound";
    let points =
      List.filter_map
        (fun v ->
          let n, c = match over with `N -> (v, v) | `C -> (n, v) in
          let res = measure ~model ~algo ~n ~k ~c ~iterations ~seed ~assignment:false in
          if not res.Runner.ok then begin
            Format.printf "%-8d (run failed)@." v;
            None
          end
          else begin
            let s = Kex_sim.Stats.summarize res in
            let bound = Kexclusion.Registry.bound ~model algo ~n ~k ~c in
            Format.printf "%-8d %10d %10.1f %10d %10d %10s@." v s.Kex_sim.Stats.max_remote
              s.mean_remote s.p50_remote s.p99_remote
              (match bound with Some b -> string_of_int b | None -> "-");
            Some (v, s, bound)
          end)
        values
    in
    (match json with
    | None -> ()
    | Some file ->
        let open Kex_service.Json in
        let point (v, (s : Kex_sim.Stats.summary), bound) =
          Obj
            ([ ("label", String (string_of_int v));
               ("value", Int v);
               ("max", Int s.Kex_sim.Stats.max_remote);
               ("mean", Float s.mean_remote);
               ("p50", Int s.p50_remote);
               ("p99", Int s.p99_remote) ]
            @ match bound with Some b -> [ ("bound", Int b) ] | None -> [])
        in
        let doc =
          Obj
            [ ("schema", String "kexclusion-sweep/v1");
              ("git_rev", String (Kex_service.Provenance.git_rev ()));
              ("hostname", String (Kex_service.Provenance.hostname ()));
              ("ocaml", String Sys.ocaml_version);
              ("algo", String (Kexclusion.Registry.algo_name algo));
              ("model", String (Format.asprintf "%a" Cost_model.pp_model model));
              ("n", Int n);
              ("k", Int k);
              ("iterations", Int iterations);
              ("over", String (match over with `N -> "n" | `C -> "contention"));
              ("points", List (Stdlib.List.map point points)) ]
        in
        let oc = open_out file in
        output_string oc (to_string ~indent:2 doc);
        output_char oc '\n';
        close_out oc);
    0
  in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(
      const run $ model_arg $ algo_arg $ n_arg $ k_arg $ iters_arg $ seed_arg $ over_arg
      $ values_arg $ json_arg)

(* ------------------------------- verify --------------------------------- *)

let verify_cmd =
  let doc = "exhaustively model-check a figure of the paper at small N" in
  let figure_arg =
    Arg.(value & opt string "fig2" & info [ "figure" ] ~doc:"fig2, fig4, fig5, fig6 or fig7")
  in
  let crashes_arg = Arg.(value & opt int 1 & info [ "crashes" ] ~doc:"crash budget") in
  let small_n_arg = Arg.(value & opt int 3 & info [ "n"; "procs" ] ~doc:"processes (keep small)") in
  let run figure n crashes =
    let report (type s) name (m : (module Kex_verify.System.MODEL with type state = s)) =
      let r = Kex_verify.Explore.check m () in
      Format.printf "%s: %d states, %d transitions, %s@." name r.Kex_verify.Explore.states
        r.transitions
        (match r.violation with
        | None -> if r.complete then "all invariants hold" else "no violation (capped)"
        | Some v -> "VIOLATION of " ^ v.property);
      match r.violation with None -> 0 | Some _ -> 1
    in
    match figure with
    | "fig2" -> report "fig2" (Kex_verify.Fig2_model.model ~n ~max_crashes:crashes ())
    | "fig4" ->
        report "fig4"
          (Kex_verify.Fig4_model.model ~n ~k:(max 1 (n - 2)) ~max_crashes:crashes ())
    | "fig5" ->
        report "fig5" (Kex_verify.Fig5_model.model ~n:(min n 3) ~rounds:2 ~max_crashes:crashes ())
    | "fig6" -> report "fig6" (Kex_verify.Fig6_model.model ~n:(min n 2) ~max_crashes:crashes ())
    | "fig7" -> report "fig7" (Kex_verify.Fig7_model.model ~procs:n ~k:n ~max_crashes:crashes ())
    | s ->
        Format.eprintf "unknown figure %S@." s;
        2
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ figure_arg $ small_n_arg $ crashes_arg)

(* -------------------------------- hunt ----------------------------------- *)

let hunt_cmd =
  let doc = "randomized deep-violation search on a figure's model" in
  let figure_arg = Arg.(value & opt string "fig2" & info [ "figure" ] ~doc:"fig2, fig4, fig6 or fig7") in
  let small_n_arg = Arg.(value & opt int 3 & info [ "n"; "procs" ] ~doc:"processes") in
  let crashes_arg = Arg.(value & opt int 1 & info [ "crashes" ] ~doc:"crash budget") in
  let walks_arg = Arg.(value & opt int 200 & info [ "walks" ] ~doc:"random walks") in
  let steps_arg = Arg.(value & opt int 2000 & info [ "steps" ] ~doc:"steps per walk") in
  let run figure n crashes walks steps =
    let hunt (type s) (m : (module Kex_verify.System.MODEL with type state = s))
        (pp : Format.formatter -> s -> unit) =
      match Kex_verify.Explore.hunt m ~seeds:(List.init walks Fun.id) ~steps () with
      | None ->
          Format.printf "no violation found in %d walks x %d steps@." walks steps;
          0
      | Some v ->
          Format.printf "%a" (Kex_verify.Explore.pp_violation pp) v;
          1
    in
    match figure with
    | "fig2" ->
        let (module M) = Kex_verify.Fig2_model.model ~n ~max_crashes:crashes () in
        hunt (module M) M.pp
    | "fig4" ->
        let (module M) = Kex_verify.Fig4_model.model ~n ~k:(max 1 (n - 2)) ~max_crashes:crashes () in
        hunt (module M) M.pp
    | "fig6" ->
        let (module M) = Kex_verify.Fig6_model.model ~n:(min n 3) ~max_crashes:crashes () in
        hunt (module M) M.pp
    | "fig7" ->
        let (module M) = Kex_verify.Fig7_model.model ~procs:n ~k:n ~max_crashes:crashes () in
        hunt (module M) M.pp
    | s ->
        Format.eprintf "unknown figure %S@." s;
        2
  in
  Cmd.v (Cmd.info "hunt" ~doc)
    Term.(const run $ figure_arg $ small_n_arg $ crashes_arg $ walks_arg $ steps_arg)

(* -------------------------------- serve ---------------------------------- *)

let runtime_algo_conv =
  let parse = function
    | "naive" -> Ok Kex_runtime.Kex_lock.Naive
    | "inductive" -> Ok Kex_runtime.Kex_lock.Inductive
    | "tree" -> Ok Kex_runtime.Kex_lock.Tree
    | "fastpath" -> Ok Kex_runtime.Kex_lock.Fast_path
    | "graceful" -> Ok Kex_runtime.Kex_lock.Graceful
    | "dsm-fastpath" -> Ok Kex_runtime.Kex_lock.Dsm_fast_path
    | s ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown algorithm %S (use naive, inductive, tree, fastpath, graceful or \
                dsm-fastpath)"
               s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (match a with
      | Kex_runtime.Kex_lock.Naive -> "naive"
      | Kex_runtime.Kex_lock.Inductive -> "inductive"
      | Kex_runtime.Kex_lock.Tree -> "tree"
      | Kex_runtime.Kex_lock.Fast_path -> "fastpath"
      | Kex_runtime.Kex_lock.Graceful -> "graceful"
      | Kex_runtime.Kex_lock.Dsm_fast_path -> "dsm-fastpath")
  in
  Arg.conv (parse, print)

let chaos_conv =
  let parse s =
    match Kex_service.Chaos.parse s with Ok e -> Ok e | Error msg -> Error (`Msg msg)
  in
  let print ppf e = Format.pp_print_string ppf (Kex_service.Chaos.to_string e) in
  Arg.conv (parse, print)

let port_arg = Arg.(value & opt int 7070 & info [ "port"; "p" ] ~doc:"TCP port (0 = ephemeral)")
let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"suppress progress output")

let serve_cmd =
  let doc = "serve the (k-1)-resilient KV store over TCP with a worker-pool admission wrapper" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Runs a listener plus $(b,--shards) S x $(b,--workers) W worker domains.  Keys route to \
         shards by hash; each shard's store sits behind its own k-exclusion/k-assignment \
         admission wrapper, so at most $(b,--k) workers mutate a shard concurrently and up to \
         k-1 workers per shard may die — $(b,--chaos) schedule or the KILL admin command — \
         with zero client-visible failures.  Killing k workers of one shard stalls that shard \
         (and only that shard): the paper's resilience boundary, live on the wire.  Workers \
         drain requests in batches through one admission per batch, and id-tagged (pipelined) \
         requests get their responses coalesced per connection.  GETs are answered wait-free \
         by connection threads from each shard's published snapshot — no admission slot, so \
         reads stay live even on a fully wedged shard; $(b,--admission-reads) routes them \
         through the wrapper like mutations instead.  Connections are owned by \
         $(b,--reactors) poll(2) event-loop domains (accept round-robins across them, worker \
         completions arrive through lock-free mailboxes, slow clients get backpressure from a \
         bounded output buffer); $(b,--conn-threads) selects the thread-per-connection \
         baseline instead." ]
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers"; "w" ] ~doc:"worker domains per shard")
  in
  let k_arg =
    Arg.(value & opt int 2 & info [ "k"; "degree" ] ~doc:"per-shard admission bound (k <= workers)")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards"; "s" ] ~doc:"independent store shards, each with its own admission wrapper")
  in
  let algo_arg =
    Arg.(
      value
      & opt runtime_algo_conv Kex_runtime.Kex_lock.Fast_path
      & info [ "algo" ] ~doc:"naive | inductive | tree | fastpath | graceful | dsm-fastpath")
  in
  let chaos_arg =
    Arg.(
      value
      & opt chaos_conv []
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:"fault-injection schedule, e.g. 'kill-worker\\@5s,kill-worker:2\\@10s'")
  in
  let duration_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "duration" ] ~docv:"S" ~doc:"stop after S seconds (default: on SIGINT/SIGTERM)")
  in
  let admission_reads_arg =
    Arg.(
      value & flag
      & info [ "admission-reads" ]
          ~doc:"route GETs through the admission wrapper like mutations (default: answer them \
                wait-free from the shard snapshot)")
  in
  let cluster_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "cluster" ] ~docv:"ADDRS"
          ~doc:"join a cluster: comma-separated host:port list, identical on every node, with \
                $(b,--shards) then the global shard count (shard s starts on node s mod n)")
  in
  let node_arg =
    Arg.(
      value & opt int 0
      & info [ "node" ] ~docv:"I" ~doc:"this node's index into the $(b,--cluster) list")
  in
  let reactors_arg =
    Arg.(
      value & opt int 2
      & info [ "reactors"; "R" ] ~docv:"R"
          ~doc:"event-loop domains owning the connection plane (accept round-robins across \
                them); 0 = one systhread per connection")
  in
  let conn_threads_arg =
    Arg.(
      value & flag
      & info [ "conn-threads" ]
          ~doc:"thread-per-connection baseline: shorthand for $(b,--reactors) 0")
  in
  let run port workers k shards algo chaos duration admission_reads cluster node reactors
      conn_threads quiet =
    let log = if quiet then fun _ -> () else fun s -> print_endline s; flush stdout in
    match
      Kex_service.Server.run ?duration_s:duration
        { Kex_service.Server.port; workers; k; shards; algo; chaos;
          wait_free_reads = not admission_reads;
          cluster = Option.map (fun addrs -> (node, addrs)) cluster;
          reactors = (if conn_threads then 0 else max 0 reactors);
          out_hwm = Kex_service.Server.default_config.Kex_service.Server.out_hwm;
          slow_drain_s = Kex_service.Server.default_config.Kex_service.Server.slow_drain_s;
          log }
    with
    | () -> 0
    | exception Invalid_argument msg ->
        Format.eprintf "kexd serve: %s@." msg;
        2
    | exception Unix.Unix_error (e, fn, _) ->
        Format.eprintf "kexd serve: %s: %s@." fn (Unix.error_message e);
        1
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ port_arg $ workers_arg $ k_arg $ shards_arg $ algo_arg $ chaos_arg
      $ duration_arg $ admission_reads_arg $ cluster_arg $ node_arg $ reactors_arg
      $ conn_threads_arg $ quiet_arg)

(* ------------------------------- loadgen ---------------------------------- *)

let loadgen_cmd =
  let doc = "drive a kexd server and measure throughput, latency percentiles and errors" in
  let mix_conv =
    let parse s =
      match Kex_service.Loadgen.parse_mix s with Ok m -> Ok m | Error msg -> Error (`Msg msg)
    in
    let print ppf m = Format.pp_print_string ppf (Kex_service.Loadgen.mix_to_string m) in
    Arg.conv (parse, print)
  in
  let host_arg = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"server address") in
  let conns_arg =
    Arg.(value & opt int 4 & info [ "connections"; "c" ] ~doc:"client domains (one connection each)")
  in
  let duration_arg = Arg.(value & opt float 5. & info [ "duration" ] ~docv:"S" ~doc:"seconds of load") in
  let mix_arg =
    Arg.(
      value
      & opt mix_conv Kex_service.Loadgen.default_config.Kex_service.Loadgen.mix
      & info [ "mix" ]
          ~doc:"weighted op mix, e.g. get=95,set=5 (ops: get/set/del/update/rmw/scan; rmw = \
                GET-then-SET charged as one request, scan = ordered range read)")
  in
  let keys_arg =
    Arg.(value & opt int 64 & info [ "keys" ] ~doc:"keyspace size (millions are fine)")
  in
  let dist_conv =
    let parse s =
      match Kex_service.Keydist.dist_of_string s with
      | Some d -> Ok d
      | None -> Error (`Msg (Printf.sprintf "unknown distribution %S (use uniform/zipfian/latest)" s))
    in
    let print ppf d = Format.pp_print_string ppf (Kex_service.Keydist.dist_name d) in
    Arg.conv (parse, print)
  in
  let dist_arg =
    Arg.(
      value
      & opt dist_conv Kex_service.Keydist.Uniform
      & info [ "dist" ] ~doc:"key distribution: uniform, zipfian (YCSB theta=0.99) or latest")
  in
  let value_size_arg = Arg.(value & opt int 16 & info [ "value-size" ] ~doc:"SET payload bytes") in
  let value_size_max_arg =
    Arg.(
      value & opt int 0
      & info [ "value-size-max" ]
          ~doc:"when > --value-size, SET sizes draw uniformly from [value-size, value-size-max]")
  in
  let scan_len_arg =
    Arg.(value & opt int 16 & info [ "scan-len" ] ~doc:"range length for scan ops")
  in
  let wire_conv =
    let parse = function
      | "text" -> Ok Kex_service.Protocol.Text
      | "binary" | "bin" -> Ok Kex_service.Protocol.Binary
      | s -> Error (`Msg (Printf.sprintf "unknown wire %S (use text or binary)" s))
    in
    let print ppf w = Format.pp_print_string ppf (Kex_service.Protocol.wire_name w) in
    Arg.conv (parse, print)
  in
  let wire_arg =
    Arg.(
      value
      & opt wire_conv Kex_service.Protocol.Text
      & info [ "wire" ] ~doc:"framing: text (v1) or binary (v2); the server sniffs per connection")
  in
  let lg_seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed") in
  let timeout_arg =
    Arg.(value & opt float 2. & info [ "timeout" ] ~docv:"S" ~doc:"per-request timeout (timeouts count as errors)")
  in
  let pipeline_arg =
    Arg.(
      value & opt int 1
      & info [ "pipeline" ] ~docv:"W"
          ~doc:"id-tagged requests in flight per connection (1 = v1 one-at-a-time wire)")
  in
  let conns_per_client_arg =
    Arg.(
      value & opt int 1
      & info [ "conns-per-client"; "conns" ] ~docv:"N"
          ~doc:"sockets per client domain (total connections = N x $(b,--connections)); > 1 \
                select-multiplexes them in one domain, each with its own $(b,--pipeline) \
                window on the id-tagged wire — the connection-scaling knob")
  in
  let phase_marks_arg =
    Arg.(
      value
      & opt (list float) []
      & info [ "phase-marks" ] ~docv:"T1,T2"
          ~doc:"split the run at these offsets (seconds) for per-phase stats")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"write the run record (schema kexclusion-serve/v6)")
  in
  let cluster_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "cluster" ] ~docv:"ADDRS"
          ~doc:"cluster seed nodes (comma-separated host:port): bootstrap the routing table \
                with TOPO from any of them, follow MOVED redirects, refresh on node loss")
  in
  let expect_dead_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "expect-dead" ] ~docv:"ADDRS"
          ~doc:"nodes expected to die mid-run (kill-node chaos): their errors are expected \
                and exempt from $(b,--fail-on-errors)")
  in
  let fail_on_errors_arg =
    Arg.(
      value & flag
      & info [ "fail-on-errors" ]
          ~doc:"exit 1 if any request failed (CI resilience assertion); errors attributed to \
                $(b,--expect-dead) nodes are exempt")
  in
  let run host port connections duration mix keys dist value_size value_size_max scan_len wire
      seed timeout pipeline conns_per_client phase_marks json cluster expect_dead fail_on_errors
      quiet =
    let cfg =
      { Kex_service.Loadgen.host; port; connections; duration_s = duration; mix; keys; dist;
        value_size; value_size_max; scan_len; seed; timeout_s = timeout; pipeline;
        conns_per_client; wire; phase_marks; cluster; expect_dead }
    in
    match Kex_service.Loadgen.run cfg with
    | summary ->
        if not quiet then Format.printf "%a" Kex_service.Loadgen.pp_summary summary;
        Option.iter (fun file -> Kex_service.Loadgen.emit_json ~file cfg summary) json;
        let unexpected =
          summary.Kex_service.Loadgen.errors - summary.Kex_service.Loadgen.expected_errors
        in
        if summary.Kex_service.Loadgen.requests <= summary.Kex_service.Loadgen.errors then begin
          Format.eprintf "kexd loadgen: no request succeeded — is the server up?@.";
          1
        end
        else if fail_on_errors && unexpected > 0 then begin
          Format.eprintf "kexd loadgen: %d unexpected failed requests@." unexpected;
          1
        end
        else 0
    | exception Unix.Unix_error (e, fn, _) ->
        Format.eprintf "kexd loadgen: %s: %s@." fn (Unix.error_message e);
        1
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const run $ host_arg $ port_arg $ conns_arg $ duration_arg $ mix_arg $ keys_arg
      $ dist_arg $ value_size_arg $ value_size_max_arg $ scan_len_arg $ wire_arg $ lg_seed_arg
      $ timeout_arg $ pipeline_arg $ conns_per_client_arg $ phase_marks_arg $ json_arg
      $ cluster_arg $ expect_dead_arg $ fail_on_errors_arg $ quiet_arg)

(* ------------------------------ serve-sweep ------------------------------- *)

let serve_sweep_cmd =
  let doc = "measure a shards x pipeline throughput/latency matrix (in-process server per cell)" in
  let man =
    [ `S Manpage.s_description;
      `P
        "For every (S, W) in $(b,--shards-list) x $(b,--pipeline-list), starts an in-process \
         kexd server with S shards (each with $(b,--workers) domains and admission bound \
         $(b,--k)), kills $(b,--kills) workers (default k-1, concentrated in shard 0) halfway \
         through, drives it with the load generator at pipeline depth W, and records \
         throughput and latency percentiles.  Every cell therefore doubles as a resilience \
         assertion: with kills <= k-1 the expected error count is zero.  After the matrix it \
         runs a GET-heavy read-path quad at the (max S, max W) cell — GETs through admission \
         vs. the wait-free snapshot path, healthy and with one shard's whole worker pool \
         killed mid-run (wedged cells use a pure-GET mix; the wait-free side must finish \
         with zero errors, while the admission side's timeouts are the measured baseline \
         and are exempt from $(b,--fail-on-errors)).  Then it runs the wire quad: one server \
         at the same (max S, max W) cell preloaded with $(b,--wire-keys) keys, driven with \
         YCSB-B (get=95,set=5) over text-v1 vs binary-v2 framing, uniform vs Zipfian keys — \
         no kills, so any error fails the gate.  Finally it runs the connection-scaling \
         quad: the same (max S, max W) cell at C in {4, 64, 256} total connections (client \
         domains each multiplexing C/4 sockets), thread-per-connection vs. $(b,--reactors) \
         event-loop domains — no kills, every error fails the gate; the reactor plane is \
         expected to hold its rate at C=256 where thread-per-connection pays a thread per \
         socket.  Writes the kexclusion-serve/v6 record with the matrix under $(b,sweep), \
         the read quad under $(b,read_path), the wire quad under $(b,wire), the \
         connection-scaling cells under $(b,conn_scale) and the (max S, max W) matrix cell \
         as the headline $(b,totals)." ]
  in
  let shards_list_arg =
    Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "shards-list" ] ~doc:"shard counts to sweep")
  in
  let pipeline_list_arg =
    Arg.(
      value & opt (list int) [ 1; 4; 16 ] & info [ "pipeline-list" ] ~doc:"pipeline depths to sweep")
  in
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers"; "w" ] ~doc:"worker domains per shard")
  in
  let k_arg =
    Arg.(value & opt int 2 & info [ "k"; "degree" ] ~doc:"per-shard admission bound (k <= workers)")
  in
  let algo_arg =
    Arg.(
      value
      & opt runtime_algo_conv Kex_runtime.Kex_lock.Fast_path
      & info [ "algo" ] ~doc:"naive | inductive | tree | fastpath | graceful | dsm-fastpath")
  in
  let conns_arg = Arg.(value & opt int 4 & info [ "connections"; "c" ] ~doc:"client domains") in
  let duration_arg =
    Arg.(value & opt float 2. & info [ "duration" ] ~docv:"S" ~doc:"seconds of load per cell")
  in
  let keys_arg = Arg.(value & opt int 64 & info [ "keys" ] ~doc:"keyspace size") in
  let value_size_arg = Arg.(value & opt int 16 & info [ "value-size" ] ~doc:"SET payload bytes") in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed") in
  let kills_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "kills" ] ~doc:"workers killed mid-cell (default k-1; 0 disables chaos)")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"write the kexclusion-serve/v6 sweep record")
  in
  let reactors_arg =
    Arg.(
      value & opt int 2
      & info [ "reactors"; "R" ]
          ~doc:"reactor event-loop domains for the connection-scaling quad's reactor cells")
  in
  let wire_keys_arg =
    Arg.(
      value
      & opt int 1_000_000
      & info [ "wire-keys" ]
          ~doc:"preloaded keyspace for the text-vs-binary wire quad (0 skips the quad)")
  in
  let fail_on_errors_arg =
    Arg.(
      value & flag
      & info [ "fail-on-errors" ]
          ~doc:"exit 1 if any cell saw a failed request (CI resilience assertion)")
  in
  let run shards_list pipeline_list workers k algo connections duration keys value_size seed
      kills reactors wire_keys json fail_on_errors quiet =
    let kills = Option.value kills ~default:(max 0 (k - 1)) in
    let mix = [ ("get", 70); ("set", 20); ("update", 10) ] in
    let run_cell ?(reactors = 0) ?(conns_per_client = 1) ~shards ~pipeline ~mix
        ~wait_free_reads ~kills ~kill_at () =
      (* Untargeted kills pick the lowest-index live worker, i.e. they pile
         into shard 0 — the per-shard resilience experiment. *)
      let chaos =
        List.init kills (fun i ->
            { Kex_service.Chaos.at_s = kill_at +. (0.05 *. float_of_int i);
              action = Kex_service.Chaos.Kill_worker; target = None })
      in
      let server =
        Kex_service.Server.start
          { Kex_service.Server.port = 0; workers; k; shards; algo; chaos; wait_free_reads;
            cluster = None; reactors;
            out_hwm = Kex_service.Server.default_config.Kex_service.Server.out_hwm;
            slow_drain_s = Kex_service.Server.default_config.Kex_service.Server.slow_drain_s;
            log = (fun _ -> ()) }
      in
      let cfg =
        { Kex_service.Loadgen.host = "127.0.0.1";
          port = Kex_service.Server.port server;
          connections;
          duration_s = duration;
          mix;
          keys;
          dist = Kex_service.Keydist.Uniform;
          value_size;
          value_size_max = 0;
          scan_len = 16;
          seed;
          timeout_s = 5.;
          pipeline;
          conns_per_client;
          wire = Kex_service.Protocol.Text;
          phase_marks = (if kills > 0 then [ kill_at ] else []);
          cluster = [];
          expect_dead = [] }
      in
      let summary = Kex_service.Loadgen.run cfg in
      Kex_service.Server.stop server;
      summary
    in
    (* Successful GETs per second — the read-plane comparison metric. *)
    let get_rps (s : Kex_service.Loadgen.summary) =
      match
        Stdlib.List.find_opt (fun b -> b.Kex_service.Loadgen.label = "get") s.Kex_service.Loadgen.ops
      with
      | Some b when s.Kex_service.Loadgen.wall_s > 0. ->
          float_of_int (b.Kex_service.Loadgen.requests - b.Kex_service.Loadgen.errors)
          /. s.Kex_service.Loadgen.wall_s
      | _ -> 0.
    in
    if not quiet then
      Format.printf "%-7s %-9s %9s %7s %12s %9s %9s@." "shards" "pipeline" "requests" "errors"
        "req/s" "p50_us" "p99_us";
    let cells =
      Stdlib.List.concat_map
        (fun shards ->
          Stdlib.List.map
            (fun pipeline ->
              let s =
                run_cell ~shards ~pipeline ~mix ~wait_free_reads:true ~kills
                  ~kill_at:(duration /. 2.) ()
              in
              if not quiet then
                Format.printf "%-7d %-9d %9d %7d %12.0f %9d %9d@." shards pipeline
                  s.Kex_service.Loadgen.requests s.Kex_service.Loadgen.errors
                  s.Kex_service.Loadgen.throughput_rps s.Kex_service.Loadgen.p50_us
                  s.Kex_service.Loadgen.p99_us;
              (shards, pipeline, s))
            pipeline_list)
        shards_list
    in
    let headline =
      (* The (max S, max W) cell is the configuration the sweep argues for. *)
      Stdlib.List.fold_left
        (fun acc (s, w, sum) ->
          match acc with
          | Some (s', w', _) when (s', w') >= (s, w) -> acc
          | _ -> Some (s, w, sum))
        None cells
    in
    (* The read-plane quad: the same (max S, max W) cell under a GET-heavy
       mix, with GETs routed through admission vs. the wait-free snapshot
       path, healthy and with shard 0's whole worker pool killed a quarter
       of the way in.  The healthy pair prices the wrapper on the read path;
       the wedged pair is the availability claim — snapshot GETs keep
       answering at full rate on a dead shard while admission GETs park
       behind its queue.  Wedged cells use a pure-GET mix so the wait-free
       side's zero errors is an assertion, not luck (any mutation routed to
       the dead shard would stall its connection). *)
    let read_mix = [ ("get", 95); ("set", 5) ] in
    let wedged_mix = [ ("get", 100) ] in
    let rp_shards, rp_pipeline =
      match headline with Some (s, w, _) -> (s, w) | None -> (1, 1)
    in
    let read_cells =
      Stdlib.List.map
        (fun (label, wfr, wedged) ->
          let mix = if wedged then wedged_mix else read_mix in
          let kills = if wedged then workers else 0 in
          let s =
            run_cell ~shards:rp_shards ~pipeline:rp_pipeline ~mix ~wait_free_reads:wfr ~kills
              ~kill_at:(duration /. 4.) ()
          in
          if not quiet then
            Format.printf
              "reads=%-17s (S=%d W=%d %s) %9d req %7d err %12.0f req/s  get %9.0f/s@." label
              rp_shards rp_pipeline
              (Kex_service.Loadgen.mix_to_string mix)
              s.Kex_service.Loadgen.requests s.Kex_service.Loadgen.errors
              s.Kex_service.Loadgen.throughput_rps (get_rps s);
          (label, mix, kills, s))
        [ ("admission", false, false);
          ("wait-free", true, false);
          ("admission-wedged", false, true);
          ("wait-free-wedged", true, true) ]
    in
    (* The wire quad: the same (max S, max W) cell under YCSB-B (get=95,set=5)
       against one server preloaded with [wire_keys] bindings, crossing
       text-v1 vs binary-v2 framing with uniform vs Zipfian key choice.  No
       kills — the quad prices the codec, not the resilience, so every error
       here fails the gate.  One shared server keeps the million-key preload
       out of the per-cell cost and means all four cells read the same
       store. *)
    let wire_mix = [ ("get", 95); ("set", 5) ] in
    let wire_cells =
      if wire_keys <= 0 then []
      else begin
        let server =
          Kex_service.Server.start
            { Kex_service.Server.port = 0; workers; k; shards = rp_shards; algo; chaos = [];
              wait_free_reads = true; cluster = None; reactors = 0;
              out_hwm = Kex_service.Server.default_config.Kex_service.Server.out_hwm;
              slow_drain_s = Kex_service.Server.default_config.Kex_service.Server.slow_drain_s;
              log = (fun _ -> ()) }
        in
        let value = String.make (max 1 value_size) 'v' in
        Kex_service.Server.preload server
          (Seq.init wire_keys (fun i -> (Kex_service.Keydist.key_of_index i, value)));
        let cells =
          Stdlib.List.map
            (fun (wire, dist) ->
              let cfg =
                { Kex_service.Loadgen.host = "127.0.0.1";
                  port = Kex_service.Server.port server;
                  connections;
                  duration_s = duration;
                  mix = wire_mix;
                  keys = wire_keys;
                  dist;
                  value_size;
                  value_size_max = 0;
                  scan_len = 16;
                  seed;
                  timeout_s = 5.;
                  pipeline = rp_pipeline;
                  conns_per_client = 1;
                  wire;
                  phase_marks = [];
                  cluster = [];
                  expect_dead = [] }
              in
              let s = Kex_service.Loadgen.run cfg in
              if not quiet then
                Format.printf
                  "wire=%-6s dist=%-8s (S=%d W=%d keys=%d) %9d req %7d err %12.0f req/s  p99 \
                   %6d us@."
                  (Kex_service.Protocol.wire_name wire)
                  (Kex_service.Keydist.dist_name dist)
                  rp_shards rp_pipeline wire_keys s.Kex_service.Loadgen.requests
                  s.Kex_service.Loadgen.errors s.Kex_service.Loadgen.throughput_rps
                  s.Kex_service.Loadgen.p99_us;
              (wire, dist, s))
            [ (Kex_service.Protocol.Text, Kex_service.Keydist.Uniform);
              (Kex_service.Protocol.Text, Kex_service.Keydist.Zipfian);
              (Kex_service.Protocol.Binary, Kex_service.Keydist.Uniform);
              (Kex_service.Protocol.Binary, Kex_service.Keydist.Zipfian) ]
        in
        Kex_service.Server.stop server;
        cells
      end
    in
    (* The connection-scaling cells: the same (max S, max W) cell at C total
       connections for C in {4, 64, 256} — the 4 client domains each
       multiplex C/4 sockets — crossing thread-per-connection against the
       reactor plane.  No kills: every error here fails the gate.  This is
       the quad the reactor plane argues from: at C=4 the two are
       interchangeable, at C=256 thread-per-connection pays a systhread per
       socket (all serialized on the runtime lock) while the reactors
       multiplex the same sockets on a fixed number of domains.  The cells
       use the read-plane mix (get=95,set=5 with wait-free reads) so the
       connection plane itself is what's priced: a mutation-heavy mix
       bottlenecks both planes on the same shared shard admission and
       washes the difference out.

       Unlike every other cell, the server here runs OUT of process (the
       sweep re-execs its own binary as [kexd serve]): in-process, client
       and server domains share one runtime's stop-the-world GC barriers
       and the planes' difference drowns in that coupling — and a child
       process is the honest shape of the claim anyway, since the planes
       are compared as deployed servers, not as library calls. *)
    let algo_name =
      match algo with
      | Kex_runtime.Kex_lock.Naive -> "naive"
      | Kex_runtime.Kex_lock.Inductive -> "inductive"
      | Kex_runtime.Kex_lock.Tree -> "tree"
      | Kex_runtime.Kex_lock.Fast_path -> "fastpath"
      | Kex_runtime.Kex_lock.Graceful -> "graceful"
      | Kex_runtime.Kex_lock.Dsm_fast_path -> "dsm-fastpath"
    in
    let run_cell_extern ~reactors ~conns_per_client ~shards ~pipeline ~mix () =
      let start_child attempt =
        let port = 7300 + (((Unix.getpid () * 7) + (attempt * 131)) mod 20000) in
        let plane =
          if reactors > 0 then [ "--reactors"; string_of_int reactors ]
          else [ "--conn-threads" ]
        in
        let args =
          [ "kexd"; "serve"; "--port"; string_of_int port; "--shards";
            string_of_int shards; "--workers"; string_of_int workers; "-k";
            string_of_int k; "--algo"; algo_name; "--duration";
            (* Belt and braces: the child exits on its own even if the
               parent dies before the SIGTERM below. *)
            Printf.sprintf "%.0f" (duration +. 60.) ]
          @ plane
        in
        let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
        let pid =
          Unix.create_process Sys.executable_name (Array.of_list args) devnull devnull
            devnull
        in
        Unix.close devnull;
        let deadline = Unix.gettimeofday () +. 5. in
        (* Ready when the child's listener accepts; a dead child (port
           clash) shows up as waitpid reaping it. *)
        let rec ready () =
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
          | () ->
              Unix.close fd;
              true
          | exception Unix.Unix_error _ ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              if Unix.gettimeofday () > deadline then false
              else if fst (Unix.waitpid [ Unix.WNOHANG ] pid) <> 0 then false
              else begin
                Thread.delay 0.02;
                ready ()
              end
        in
        if ready () then Some (pid, port)
        else begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          None
        end
      in
      let rec spawn attempt =
        if attempt > 8 then failwith "conn-scale: could not start the child server"
        else match start_child attempt with Some c -> c | None -> spawn (attempt + 1)
      in
      let pid, port = spawn 0 in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        (fun () ->
          Kex_service.Loadgen.run
            { Kex_service.Loadgen.host = "127.0.0.1"; port; connections;
              duration_s = duration; mix; keys; dist = Kex_service.Keydist.Uniform;
              value_size; value_size_max = 0; scan_len = 16; seed; timeout_s = 5.;
              pipeline; conns_per_client; wire = Kex_service.Protocol.Text;
              phase_marks = []; cluster = []; expect_dead = [] })
    in
    let conn_scale_cells =
      Stdlib.List.concat_map
        (fun conns ->
          Stdlib.List.map
            (fun (mode, r) ->
              let conns_per_client = max 1 (conns / max 1 connections) in
              let s =
                run_cell_extern ~reactors:r ~conns_per_client ~shards:rp_shards
                  ~pipeline:rp_pipeline ~mix:read_mix ()
              in
              if not quiet then
                Format.printf
                  "conns=%-4d plane=%-8s (S=%d W=%d R=%d) %9d req %7d err %12.0f req/s  p99 \
                   %6d us@."
                  conns mode rp_shards rp_pipeline r s.Kex_service.Loadgen.requests
                  s.Kex_service.Loadgen.errors s.Kex_service.Loadgen.throughput_rps
                  s.Kex_service.Loadgen.p99_us;
              (mode, r, conns, s))
            [ ("threads", 0); ("reactor", max 1 reactors) ])
        [ 4; 64; 256 ]
    in
    (match (json, headline) with
    | Some file, Some (hs, hw, hsum) ->
        let open Kex_service.Json in
        let cell_json (shards, pipeline, (s : Kex_service.Loadgen.summary)) =
          Obj
            [ ("shards", Int shards);
              ("pipeline", Int pipeline);
              ("kills", Int kills);
              ("requests", Int s.requests);
              ("errors", Int s.errors);
              ("throughput_rps", Float s.throughput_rps);
              ("p50_us", Int s.p50_us);
              ("p99_us", Int s.p99_us);
              ("max_us", Int s.max_us) ]
        in
        let read_cell_json (label, mix, kills, (s : Kex_service.Loadgen.summary)) =
          Obj
            [ ("reads", String label);
              ("shards", Int rp_shards);
              ("pipeline", Int rp_pipeline);
              ("mix", String (Kex_service.Loadgen.mix_to_string mix));
              ("kills", Int kills);
              ("requests", Int s.requests);
              ("errors", Int s.errors);
              ("throughput_rps", Float s.throughput_rps);
              ("get_rps", Float (get_rps s));
              ("p50_us", Int s.p50_us);
              ("p99_us", Int s.p99_us) ]
        in
        let wire_cell_json (wire, dist, (s : Kex_service.Loadgen.summary)) =
          Obj
            [ ("wire", String (Kex_service.Protocol.wire_name wire));
              ("dist", String (Kex_service.Keydist.dist_name dist));
              ("shards", Int rp_shards);
              ("pipeline", Int rp_pipeline);
              ("keys", Int wire_keys);
              ("mix", String (Kex_service.Loadgen.mix_to_string wire_mix));
              ("kills", Int 0);
              ("requests", Int s.requests);
              ("errors", Int s.errors);
              ("throughput_rps", Float s.throughput_rps);
              ("p50_us", Int s.p50_us);
              ("p99_us", Int s.p99_us) ]
        in
        let conn_scale_json (mode, r, conns, (s : Kex_service.Loadgen.summary)) =
          Obj
            [ ("plane", String mode);
              ("reactors", Int r);
              ("conns", Int conns);
              ("shards", Int rp_shards);
              ("pipeline", Int rp_pipeline);
              ("mix", String (Kex_service.Loadgen.mix_to_string read_mix));
              ("kills", Int 0);
              ("requests", Int s.requests);
              ("errors", Int s.errors);
              ("throughput_rps", Float s.throughput_rps);
              ("p50_us", Int s.p50_us);
              ("p99_us", Int s.p99_us) ]
        in
        let doc =
          Obj
            [ ("schema", String "kexclusion-serve/v6");
              ("git_rev", String (Kex_service.Provenance.git_rev ()));
              ("hostname", String (Kex_service.Provenance.hostname ()));
              ("ocaml", String Sys.ocaml_version);
              ( "config",
                Obj
                  [ ("workers", Int workers);
                    ("k", Int k);
                    ("shards", Int hs);
                    ("pipeline", Int hw);
                    ("connections", Int connections);
                    ("duration_s", Float duration);
                    ("mix", String (Kex_service.Loadgen.mix_to_string mix));
                    ("keys", Int keys);
                    ("value_size", Int value_size);
                    ("seed", Int seed);
                    ("kills", Int kills);
                    ("reactors", Int reactors);
                    ("wire_keys", Int wire_keys) ] );
              ("totals", Kex_service.Loadgen.summary_json hsum);
              ("sweep", List (Stdlib.List.map cell_json cells));
              ("read_path", List (Stdlib.List.map read_cell_json read_cells));
              ("wire", List (Stdlib.List.map wire_cell_json wire_cells));
              ("conn_scale", List (Stdlib.List.map conn_scale_json conn_scale_cells)) ]
        in
        let oc = open_out file in
        output_string oc (to_string ~indent:2 doc);
        output_char oc '\n';
        close_out oc
    | _ -> ());
    (* The admission-wedged cell is the deliberately degraded baseline — its
       timeouts are the experiment, so it is exempt from the error gate.
       The wait-free-wedged cell is NOT exempt: zero errors there is the
       availability assertion this sweep exists to check. *)
    let all_summaries =
      Stdlib.List.map (fun (_, _, s) -> s) cells
      @ Stdlib.List.filter_map
          (fun (label, _, _, s) -> if label = "admission-wedged" then None else Some s)
          read_cells
      @ Stdlib.List.map (fun (_, _, s) -> s) wire_cells
      @ Stdlib.List.map (fun (_, _, _, s) -> s) conn_scale_cells
    in
    let total_errors =
      Stdlib.List.fold_left (fun acc s -> acc + s.Kex_service.Loadgen.errors) 0 all_summaries
    in
    let no_successes =
      Stdlib.List.exists
        (fun s -> s.Kex_service.Loadgen.requests <= s.Kex_service.Loadgen.errors)
        all_summaries
    in
    if no_successes then begin
      Format.eprintf "kexd serve-sweep: a cell had no successful request@.";
      1
    end
    else if fail_on_errors && total_errors > 0 then begin
      Format.eprintf "kexd serve-sweep: %d failed requests across the matrix@." total_errors;
      1
    end
    else 0
  in
  Cmd.v (Cmd.info "serve-sweep" ~doc ~man)
    Term.(
      const run $ shards_list_arg $ pipeline_list_arg $ workers_arg $ k_arg $ algo_arg
      $ conns_arg $ duration_arg $ keys_arg $ value_size_arg $ seed_arg $ kills_arg
      $ reactors_arg $ wire_keys_arg $ json_arg $ fail_on_errors_arg $ quiet_arg)

(* ----------------------------- cluster-sweep ------------------------------ *)

let cluster_sweep_cmd =
  let doc = "measure the multi-node cluster: node-count scaling, live migration, node kill" in
  let man =
    [ `S Manpage.s_description;
      `P
        "For every N in $(b,--nodes-list), stands up an in-process shared-nothing cluster of \
         N kexd nodes over $(b,--shards) global shards (shard s starts on node s mod N, \
         epoch 1) and drives it with the cluster-aware load generator — clients bootstrap \
         the routing table with TOPO, route keys to shard owners and follow MOVED \
         redirects — at pipeline depth $(b,--pipeline) over the binary wire.  Then two \
         2-node resilience cells: $(b,migration), where shard 0 is handed off live between \
         nodes halfway through (bulk snapshot, fence + drain, delta + epoch bump) and zero \
         client-visible errors asserts that no acknowledged write was lost; and $(b,kill), \
         where one node is crashed abruptly mid-run (kill-node chaos) and its shards are \
         reassigned to the survivor shortly after — errors on the dead node are expected \
         and separately counted, while a single error on a surviving shard fails \
         $(b,--fail-on-errors).  Writes the kexclusion-serve/v5 record with the scaling \
         cells under $(b,cluster), the resilience cells under $(b,migration)/$(b,kill) and \
         the max-N scaling cell as the headline $(b,totals)." ]
  in
  let nodes_list_arg =
    Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "nodes-list" ] ~doc:"cluster sizes to sweep")
  in
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers"; "w" ] ~doc:"worker domains per shard per node")
  in
  let k_arg =
    Arg.(value & opt int 2 & info [ "k"; "degree" ] ~doc:"per-shard admission bound (k <= workers)")
  in
  let shards_arg =
    Arg.(value & opt int 4 & info [ "shards"; "s" ] ~doc:"global shard count (spread over nodes)")
  in
  let pipeline_arg =
    Arg.(value & opt int 16 & info [ "pipeline" ] ~docv:"W" ~doc:"requests in flight per client")
  in
  let conns_arg = Arg.(value & opt int 4 & info [ "connections"; "c" ] ~doc:"client domains") in
  let duration_arg =
    Arg.(value & opt float 2. & info [ "duration" ] ~docv:"S" ~doc:"seconds of load per cell")
  in
  let keys_arg = Arg.(value & opt int 64 & info [ "keys" ] ~doc:"keyspace size") in
  let value_size_arg = Arg.(value & opt int 16 & info [ "value-size" ] ~doc:"SET payload bytes") in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed") in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"write the kexclusion-serve/v5 sweep record")
  in
  let fail_on_errors_arg =
    Arg.(
      value & flag
      & info [ "fail-on-errors" ]
          ~doc:"exit 1 if any surviving-shard cell saw a failed request (CI resilience \
                assertion); the kill cell's dead-node errors are expected and exempt")
  in
  let run nodes_list workers k shards pipeline connections duration keys value_size seed json
      fail_on_errors quiet =
    let mix = [ ("get", 70); ("set", 20); ("update", 10) ] in
    (* An in-process N-node cluster on ephemeral ports: start every node
       cluster-less, read the ports back, then hand every node the shared
       address list — the same deterministic bootstrap real deployments
       compute from a fixed --cluster flag. *)
    let start_cluster ?(chaos = fun _ -> []) n =
      let servers =
        List.init n (fun i ->
            Kex_service.Server.start
              { Kex_service.Server.port = 0; workers; k; shards;
                algo = Kex_runtime.Kex_lock.Fast_path; chaos = chaos i;
                wait_free_reads = true; cluster = None; reactors = 0;
                out_hwm = Kex_service.Server.default_config.Kex_service.Server.out_hwm;
                slow_drain_s = Kex_service.Server.default_config.Kex_service.Server.slow_drain_s;
                log = (fun _ -> ()) })
      in
      let addrs =
        List.map (fun s -> Printf.sprintf "127.0.0.1:%d" (Kex_service.Server.port s)) servers
      in
      List.iteri (fun i s -> Kex_service.Server.enable_cluster s ~node:i ~addrs) servers;
      (servers, addrs)
    in
    let lg_cfg ~addrs ~expect_dead ~marks =
      { Kex_service.Loadgen.host = "127.0.0.1";
        port = 0;
        connections;
        duration_s = duration;
        mix;
        keys;
        dist = Kex_service.Keydist.Uniform;
        value_size;
        value_size_max = 0;
        scan_len = 16;
        seed;
        timeout_s = 5.;
        pipeline;
        conns_per_client = 1;
        wire = Kex_service.Protocol.Binary;
        phase_marks = marks;
        cluster = addrs;
        expect_dead }
    in
    let print_cell label (s : Kex_service.Loadgen.summary) =
      if not quiet then
        Format.printf
          "%-12s (S=%d W=%d) %9d req %6d err (%d expected) %6d redirects %12.0f req/s  p99 %6d \
           us@."
          label shards pipeline s.Kex_service.Loadgen.requests s.Kex_service.Loadgen.errors
          s.Kex_service.Loadgen.expected_errors s.Kex_service.Loadgen.redirects
          s.Kex_service.Loadgen.throughput_rps s.Kex_service.Loadgen.p99_us
    in
    (* Node-count scaling cells. *)
    let cells =
      Stdlib.List.map
        (fun n ->
          let servers, addrs = start_cluster n in
          let s = Kex_service.Loadgen.run (lg_cfg ~addrs ~expect_dead:[] ~marks:[]) in
          Stdlib.List.iter Kex_service.Server.stop servers;
          print_cell (Printf.sprintf "nodes=%d" n) s;
          (n, s))
        nodes_list
    in
    (* Migration under load: shard 0 moves from node 0 to node 1 halfway
       through.  Zero client-visible errors here is the zero-lost-acks
       assertion: every write acknowledged before the fence is in the bulk
       or delta shipment, none is acknowledged during it, and blocked
       clients wake to a MOVED naming the new owner. *)
    let migration_cell =
      let servers, addrs = start_cluster 2 in
      let src = Stdlib.List.nth servers 0 and dst_addr = Stdlib.List.nth addrs 1 in
      let mig_result = ref (Error "migration thread never ran") in
      let mig_thread =
        Thread.create
          (fun () ->
            Thread.delay (duration /. 2.);
            mig_result := Kex_service.Server.handoff src ~shard:0 ~addr:dst_addr)
          ()
      in
      let s = Kex_service.Loadgen.run (lg_cfg ~addrs ~expect_dead:[] ~marks:[ duration /. 2. ]) in
      Thread.join mig_thread;
      Stdlib.List.iter Kex_service.Server.stop servers;
      print_cell "migration" s;
      (match !mig_result with
      | Ok () -> ()
      | Error msg -> Format.eprintf "kexd cluster-sweep: migration failed: %s@." msg);
      (s, !mig_result)
    in
    (* Node kill + failover: node 1 crashes abruptly mid-run (kill-node
       chaos); its shards fail fast at clients — expected errors — until
       the survivor adopts them at a successor epoch and routing converges
       back to full coverage.  Surviving shards must not see one error. *)
    let kill_cell =
      let kill_at = duration /. 2. and adopt_at = duration *. 0.65 in
      let chaos i =
        if i = 1 then
          [ { Kex_service.Chaos.at_s = kill_at; action = Kex_service.Chaos.Kill_node;
              target = None } ]
        else []
      in
      let servers, addrs = start_cluster ~chaos 2 in
      let survivor = Stdlib.List.nth servers 0 and dead_addr = Stdlib.List.nth addrs 1 in
      let adopt_thread =
        Thread.create
          (fun () ->
            Thread.delay adopt_at;
            for shard = 0 to shards - 1 do
              if shard mod 2 = 1 then
                match Kex_service.Server.adopt survivor ~shard with
                | Ok () -> ()
                | Error msg ->
                    Format.eprintf "kexd cluster-sweep: adopt shard %d: %s@." shard msg
            done)
          ()
      in
      let s =
        Kex_service.Loadgen.run
          (lg_cfg ~addrs ~expect_dead:[ dead_addr ] ~marks:[ kill_at; adopt_at ])
      in
      Thread.join adopt_thread;
      Stdlib.List.iter Kex_service.Server.stop servers;
      print_cell "kill-node" s;
      (s, dead_addr)
    in
    let headline =
      Stdlib.List.fold_left
        (fun acc (n, s) -> match acc with Some (n', _) when n' >= n -> acc | _ -> Some (n, s))
        None cells
    in
    (match (json, headline) with
    | Some file, Some (hn, hsum) ->
        let open Kex_service.Json in
        let base (s : Kex_service.Loadgen.summary) =
          [ ("shards", Int shards);
            ("pipeline", Int pipeline);
            ("requests", Int s.requests);
            ("errors", Int s.errors);
            ("expected_errors", Int s.expected_errors);
            ("redirects", Int s.redirects);
            ("throughput_rps", Float s.throughput_rps);
            ("p50_us", Int s.p50_us);
            ("p99_us", Int s.p99_us) ]
        in
        let mig_sum, mig_result = migration_cell in
        let kill_sum, dead_addr = kill_cell in
        let doc =
          Obj
            [ ("schema", String "kexclusion-serve/v5");
              ("git_rev", String (Kex_service.Provenance.git_rev ()));
              ("hostname", String (Kex_service.Provenance.hostname ()));
              ("ocaml", String Sys.ocaml_version);
              ( "config",
                Obj
                  [ ("workers", Int workers);
                    ("k", Int k);
                    ("shards", Int shards);
                    ("pipeline", Int pipeline);
                    ("nodes", Int hn);
                    ("connections", Int connections);
                    ("duration_s", Float duration);
                    ("mix", String (Kex_service.Loadgen.mix_to_string mix));
                    ("keys", Int keys);
                    ("value_size", Int value_size);
                    ("seed", Int seed) ] );
              ("totals", Kex_service.Loadgen.summary_json hsum);
              ( "cluster",
                List
                  (Stdlib.List.map
                     (fun (n, s) -> Obj (("nodes", Int n) :: base s))
                     cells) );
              ( "migration",
                Obj
                  (("nodes", Int 2) :: ("shard", Int 0)
                  :: ("ok", Int (match mig_result with Ok () -> 1 | Error _ -> 0))
                  :: base mig_sum) );
              ( "kill",
                Obj (("nodes", Int 2) :: ("dead", String dead_addr) :: base kill_sum) ) ]
        in
        let oc = open_out file in
        output_string oc (to_string ~indent:2 doc);
        output_char oc '\n';
        close_out oc
    | _ -> ());
    let mig_sum, mig_result = migration_cell in
    let kill_sum, _ = kill_cell in
    let all_summaries = Stdlib.List.map snd cells @ [ mig_sum; kill_sum ] in
    let no_successes =
      Stdlib.List.exists
        (fun (s : Kex_service.Loadgen.summary) -> s.requests <= s.errors)
        all_summaries
    in
    let unexpected =
      Stdlib.List.fold_left
        (fun acc (s : Kex_service.Loadgen.summary) -> acc + s.errors - s.expected_errors)
        0 all_summaries
    in
    if no_successes then begin
      Format.eprintf "kexd cluster-sweep: a cell had no successful request@.";
      1
    end
    else if mig_result <> Ok () then 1
    else if fail_on_errors && unexpected > 0 then begin
      Format.eprintf "kexd cluster-sweep: %d unexpected failed requests across the cells@."
        unexpected;
      1
    end
    else 0
  in
  Cmd.v (Cmd.info "cluster-sweep" ~doc ~man)
    Term.(
      const run $ nodes_list_arg $ workers_arg $ k_arg $ shards_arg $ pipeline_arg $ conns_arg
      $ duration_arg $ keys_arg $ value_size_arg $ seed_arg $ json_arg $ fail_on_errors_arg
      $ quiet_arg)

(* -------------------------------- lint ----------------------------------- *)

let lint_cmd =
  let doc = "lint the algorithms' local-spin and exclusion discipline (static CFG + sanitizer)" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Lowers each algorithm's Op program into a bounded symbolic control-flow graph and \
         runs the L1-L4 lint passes (remote spin, invalidation-in-loop, name leak, \
         Bounded_faa range), then executes the workload under several schedulers with the \
         run-time sanitizer hooked into the simulator (k-exclusion, name uniqueness, \
         protected-cell writes, remote-spin watchdog).  Findings at an algorithm's declared \
         intended-spin sites are reported as waived.  Writes the kexclusion-lint/v1 JSON \
         document with $(b,--json)." ]
  in
  let algo_opt_arg =
    Arg.(
      value
      & opt (some algo_conv) None
      & info [ "algo" ] ~doc:"lint only this algorithm (default: all six)")
  in
  let model_opt_arg =
    Arg.(
      value
      & opt (some model_conv) None
      & info [ "model" ] ~doc:"cc or dsm (default: both)")
  in
  let lint_n_arg =
    Arg.(value & opt int 5 & info [ "n"; "procs" ] ~doc:"representative process count")
  in
  let lint_k_arg = Arg.(value & opt int 2 & info [ "k"; "degree" ] ~doc:"exclusion degree") in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"write the kexclusion-lint/v1 report")
  in
  let require_clean_arg =
    Arg.(
      value & flag
      & info [ "require-clean" ] ~doc:"exit 1 on any non-waived finding (CI gate)")
  in
  let mutant_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutant" ] ~docv:"NAME"
          ~doc:"lint one seeded mutant instead of the real algorithms (expected dirty: \
                exits nonzero when the analyzer catches it)")
  in
  let mutants_arg =
    Arg.(
      value & flag
      & info [ "mutants" ]
          ~doc:"also run the whole seeded-mutant corpus; exit 1 unless every mutant is \
                killed by its expected check")
  in
  let static_only_arg =
    Arg.(value & flag & info [ "static-only" ] ~doc:"skip the dynamic sanitizer runs")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"print every finding with its witness")
  in
  let run algo model n k json require_clean mutant mutants static_only verbose =
    let module A = Kex_analysis in
    let analyze = A.Lint.analyze ~static_only in
    match mutant with
    | Some name -> (
        match A.Mutants.find name with
        | None ->
            Format.eprintf "unknown mutant %S (have: %s)@." name
              (String.concat ", " (Stdlib.List.map (fun m -> m.A.Mutants.m_name) A.Mutants.all));
            2
        | Some m ->
            let r = analyze m.A.Mutants.m_subject in
            Format.printf "mutant %s: %s@." m.A.Mutants.m_name m.A.Mutants.m_desc;
            Format.printf "expected: %s — %s@."
              (A.Finding.id m.A.Mutants.m_expected)
              (if A.Mutants.killed m r then "KILLED" else "SURVIVED");
            Format.printf "%a" A.Report.pp_findings r;
            Option.iter
              (fun file ->
                let oc = open_out file in
                output_string oc (Kex_service.Json.to_string ~indent:2 (A.Report.to_json [ r ]));
                output_char oc '\n';
                close_out oc)
              json;
            if A.Lint.clean r then 0 else 1)
    | None ->
        let algos = match algo with Some a -> [ a ] | None -> Kexclusion.Registry.all in
        let models =
          match model with
          | Some m -> [ m ]
          | None -> [ Cost_model.Cache_coherent; Cost_model.Distributed ]
        in
        let reports =
          Stdlib.List.concat_map
            (fun model ->
              Stdlib.List.map
                (fun algo -> analyze (A.Lint.subject_of_algo ~model ~algo ~n ~k))
                algos)
            models
        in
        Format.printf "%a" A.Report.pp_table reports;
        if verbose then
          Stdlib.List.iter
            (fun r ->
              if r.A.Lint.r_findings <> [] then begin
                Format.printf "@.%s under %s:@." r.A.Lint.r_subject.A.Lint.sub_name
                  (A.Report.model_name r.A.Lint.r_subject.A.Lint.sub_model);
                Format.printf "%a" A.Report.pp_findings r
              end)
            reports;
        let mutant_results =
          if not mutants then []
          else
            Stdlib.List.map
              (fun m ->
                let r = analyze m.A.Mutants.m_subject in
                (m, r, A.Mutants.killed m r))
              A.Mutants.all
        in
        if mutants then begin
          Format.printf "@.%-26s %-26s %s@." "mutant" "expected" "verdict";
          Format.printf "%s@." (String.make 62 '-');
          Stdlib.List.iter
            (fun (m, _, killed) ->
              Format.printf "%-26s %-26s %s@." m.A.Mutants.m_name
                (A.Finding.id m.A.Mutants.m_expected)
                (if killed then "killed" else "SURVIVED"))
            mutant_results
        end;
        Option.iter
          (fun file ->
            let oc = open_out file in
            output_string oc
              (Kex_service.Json.to_string ~indent:2
                 (A.Report.to_json ~mutants:mutant_results reports));
            output_char oc '\n';
            close_out oc)
          json;
        let dirty = Stdlib.List.exists (fun r -> not (A.Lint.clean r)) reports in
        let survived = Stdlib.List.exists (fun (_, _, killed) -> not killed) mutant_results in
        if (require_clean && dirty) || survived then 1 else 0
  in
  Cmd.v (Cmd.info "lint" ~doc ~man)
    Term.(
      const run $ algo_opt_arg $ model_opt_arg $ lint_n_arg $ lint_k_arg $ json_arg
      $ require_clean_arg $ mutant_arg $ mutants_arg $ static_only_arg $ verbose_arg)

(* ------------------------------- srclint ---------------------------------- *)

let srclint_cmd =
  let doc = "lint the real OCaml service stack's concurrency discipline (S1-S5)" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Parses every .ml under lib/ and bin/ with the compiler's grammar and walks each \
         function with a path-sensitive model of lock state: S1 lock-leak (a Mutex.lock \
         with a raising or early-return path that skips the unlock), S2 wait-without-recheck \
         (Condition.wait not inside a while loop), S3 blocking-under-lock (Unix/Thread/Netio \
         blocking calls while a mutex is held), S4 non-atomic RMW (Atomic.set computed from \
         Atomic.get of the same cell), and S5 unguarded shared state (accesses that the \
         per-module guarded-by manifest assigns to a lock, made without it).  Waivers — \
         [@srclint.allow S3] attributes or manifest entries — are reported as waived, never \
         dropped.  Writes the kexclusion-srclint/v1 JSON document with $(b,--json)." ]
  in
  let root_arg =
    Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc:"repository root to scan")
  in
  let file_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"PATH" ~doc:"lint a single .ml file instead of scanning")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"write the kexclusion-srclint/v1 report")
  in
  let require_clean_arg =
    Arg.(
      value & flag
      & info [ "require-clean" ] ~doc:"exit 1 on any non-waived finding (CI gate)")
  in
  let mutant_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutant" ] ~docv:"NAME"
          ~doc:"lint one seeded source mutant (expected dirty: exits nonzero when its \
                expected check kills it)")
  in
  let mutants_arg =
    Arg.(
      value & flag
      & info [ "mutants" ]
          ~doc:"also run the seeded source-mutant corpus; exit 1 unless every mutant is \
                killed by exactly its expected check")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"print every finding with its witness")
  in
  let run root file json require_clean mutant mutants verbose =
    let module A = Kex_analysis in
    match mutant with
    | Some name -> (
        match A.Srclint_mutants.find name with
        | None ->
            Format.eprintf "unknown mutant %S (have: %s)@." name
              (String.concat ", "
                 (Stdlib.List.map (fun m -> m.A.Srclint_mutants.sm_name) A.Srclint_mutants.all));
            2
        | Some m ->
            let fr = A.Srclint_mutants.report m in
            Format.printf "mutant %s: %s@." m.A.Srclint_mutants.sm_name
              m.A.Srclint_mutants.sm_desc;
            Format.printf "expected: %s — %s%s@."
              (A.Finding.id m.A.Srclint_mutants.sm_expected)
              (if A.Srclint_mutants.killed m fr then "KILLED" else "SURVIVED")
              (if A.Srclint_mutants.killed m fr && not (A.Srclint_mutants.exact m fr) then
                 " (but not exact)"
               else "");
            Format.printf "%a" A.Report.pp_srclint_findings fr;
            Option.iter
              (fun out ->
                let oc = open_out out in
                output_string oc
                  (Kex_service.Json.to_string ~indent:2 (A.Report.srclint_to_json [ fr ]));
                output_char oc '\n';
                close_out oc)
              json;
            if A.Srclint_mutants.killed m fr then 1 else 0)
    | None ->
        let frs =
          match file with
          | Some f -> [ A.Srclint.lint_file f ]
          | None -> A.Srclint.scan ~root ()
        in
        Format.printf "%a" A.Report.pp_srclint_table frs;
        if verbose then
          Stdlib.List.iter
            (fun fr ->
              if fr.A.Srclint.fr_findings <> [] then begin
                Format.printf "@.%s:@." fr.A.Srclint.fr_path;
                Format.printf "%a" A.Report.pp_srclint_findings fr
              end)
            frs;
        let mutant_results =
          if not mutants then []
          else
            Stdlib.List.map
              (fun m ->
                let fr = A.Srclint_mutants.report m in
                (m, fr, A.Srclint_mutants.killed m fr, A.Srclint_mutants.exact m fr))
              A.Srclint_mutants.all
        in
        if mutants then begin
          Format.printf "@.%-26s %-26s %s@." "mutant" "expected" "verdict";
          Format.printf "%s@." (String.make 66 '-');
          Stdlib.List.iter
            (fun (m, _, killed, exact) ->
              Format.printf "%-26s %-26s %s@." m.A.Srclint_mutants.sm_name
                (A.Finding.id m.A.Srclint_mutants.sm_expected)
                (if killed && exact then "killed"
                 else if killed then "KILLED-INEXACT"
                 else "SURVIVED"))
            mutant_results
        end;
        Option.iter
          (fun out ->
            let oc = open_out out in
            output_string oc
              (Kex_service.Json.to_string ~indent:2
                 (A.Report.srclint_to_json ~mutants:mutant_results frs));
            output_char oc '\n';
            close_out oc)
          json;
        let dirty = not (A.Srclint.clean frs) in
        let survived =
          Stdlib.List.exists (fun (_, _, killed, exact) -> not (killed && exact)) mutant_results
        in
        if (require_clean && dirty) || survived then 1 else 0
  in
  Cmd.v (Cmd.info "srclint" ~doc ~man)
    Term.(
      const run $ root_arg $ file_opt_arg $ json_arg $ require_clean_arg $ mutant_arg
      $ mutants_arg $ verbose_arg)

(* ----------------------------- bench-report ------------------------------- *)

let bench_report_cmd =
  let doc = "summarize a BENCH_*.json run record (bench v1/v2, serve v1-v6, sweep schemas)" in
  let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let require_zero_errors_arg =
    Arg.(value & flag & info [ "require-zero-errors" ] ~doc:"exit 1 unless the record has 0 errors")
  in
  let compare_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "compare" ] ~docv:"BASELINE"
          ~doc:"serve-schema baseline record; exit 1 if FILE's headline throughput regresses \
                more than the tolerance below the baseline's")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 0.2
      & info [ "tolerance" ] ~doc:"allowed fractional throughput regression for --compare")
  in
  let load_json file =
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    Kex_service.Json.parse raw
  in
  let is_serve_schema schema =
    String.length schema >= 16 && String.sub schema 0 16 = "kexclusion-serve"
  in
  let serve_throughput doc =
    let open Kex_service.Json in
    match member_str "schema" doc with
    | Some schema when is_serve_schema schema ->
        Option.bind (member "totals" doc) (member_number "throughput_rps")
    | _ -> None
  in
  let run file require_zero_errors compare tolerance =
    let open Kex_service.Json in
    match load_json file with
    | Error msg ->
        Format.eprintf "%s: not valid JSON: %s@." file msg;
        2
    | Ok doc ->
        let str k = Option.value (member_str k doc) ~default:"-" in
        let schema = str "schema" in
        Format.printf "file     : %s@." file;
        Format.printf "schema   : %s@." schema;
        (* v1 records lack provenance; the reader stays tolerant. *)
        Format.printf "git_rev  : %s@." (str "git_rev");
        Format.printf "hostname : %s@." (str "hostname");
        Format.printf "ocaml    : %s@." (str "ocaml");
        let errors =
          if is_serve_schema schema then begin
            let totals = Option.value (member "totals" doc) ~default:(Obj []) in
            let num k = Option.value (member_number k totals) ~default:0. in
            let lat = Option.value (member "latency_us" totals) ~default:(Obj []) in
            let lat_i k = Option.value (member_int k lat) ~default:0 in
            Format.printf "requests : %.0f (%.0f req/s)@." (num "requests")
              (num "throughput_rps");
            Format.printf "latency  : p50 %d us, p99 %d us, max %d us@." (lat_i "p50")
              (lat_i "p99") (lat_i "max");
            let errors = int_of_float (num "errors") in
            Format.printf "errors   : %d@." errors;
            List.iter
              (fun ph ->
                Format.printf "  phase %-10s %6d req %5d err  p50 %6d  p99 %6d us@."
                  (Option.value (member_str "label" ph) ~default:"?")
                  (Option.value (member_int "requests" ph) ~default:0)
                  (Option.value (member_int "errors" ph) ~default:0)
                  (Option.value (member_int "p50_us" ph) ~default:0)
                  (Option.value (member_int "p99_us" ph) ~default:0))
              (member_list "phases" doc);
            (* v2 sweep matrix; absent from v1 records and plain runs. *)
            List.iter
              (fun cell ->
                Format.printf "  cell S=%d W=%d  %8d req %5d err  %9.0f req/s  p50 %6d  p99 %6d us@."
                  (Option.value (member_int "shards" cell) ~default:0)
                  (Option.value (member_int "pipeline" cell) ~default:0)
                  (Option.value (member_int "requests" cell) ~default:0)
                  (Option.value (member_int "errors" cell) ~default:0)
                  (Option.value (member_number "throughput_rps" cell) ~default:0.)
                  (Option.value (member_int "p50_us" cell) ~default:0)
                  (Option.value (member_int "p99_us" cell) ~default:0))
              (member_list "sweep" doc);
            (* v3 read-plane pair; absent from v1/v2 records. *)
            List.iter
              (fun cell ->
                Format.printf
                  "  reads %-10s S=%d W=%d  %8d req %5d err  %9.0f req/s  get %9.0f/s  p99 %6d us@."
                  (Option.value (member_str "reads" cell) ~default:"?")
                  (Option.value (member_int "shards" cell) ~default:0)
                  (Option.value (member_int "pipeline" cell) ~default:0)
                  (Option.value (member_int "requests" cell) ~default:0)
                  (Option.value (member_int "errors" cell) ~default:0)
                  (Option.value (member_number "throughput_rps" cell) ~default:0.)
                  (Option.value (member_number "get_rps" cell) ~default:0.)
                  (Option.value (member_int "p99_us" cell) ~default:0))
              (member_list "read_path" doc);
            (* v4 wire quad (text vs binary x uniform vs zipfian); absent
               from v1-v3 records. *)
            List.iter
              (fun cell ->
                Format.printf
                  "  wire %-6s %-8s keys=%-8d  %8d req %5d err  %9.0f req/s  p50 %6d  p99 %6d \
                   us@."
                  (Option.value (member_str "wire" cell) ~default:"?")
                  (Option.value (member_str "dist" cell) ~default:"?")
                  (Option.value (member_int "keys" cell) ~default:0)
                  (Option.value (member_int "requests" cell) ~default:0)
                  (Option.value (member_int "errors" cell) ~default:0)
                  (Option.value (member_number "throughput_rps" cell) ~default:0.)
                  (Option.value (member_int "p50_us" cell) ~default:0)
                  (Option.value (member_int "p99_us" cell) ~default:0))
              (member_list "wire" doc);
            (* v5 cluster cells (node-count scaling + migration + kill);
               absent from v1-v4 records. *)
            let pp_cluster_cell label cell =
              Format.printf
                "  %-11s S=%d W=%d  %8d req %5d err (%d expected) %5d redirects  %9.0f req/s  \
                 p99 %6d us@."
                label
                (Option.value (member_int "shards" cell) ~default:0)
                (Option.value (member_int "pipeline" cell) ~default:0)
                (Option.value (member_int "requests" cell) ~default:0)
                (Option.value (member_int "errors" cell) ~default:0)
                (Option.value (member_int "expected_errors" cell) ~default:0)
                (Option.value (member_int "redirects" cell) ~default:0)
                (Option.value (member_number "throughput_rps" cell) ~default:0.)
                (Option.value (member_int "p99_us" cell) ~default:0)
            in
            List.iter
              (fun cell ->
                pp_cluster_cell
                  (Printf.sprintf "nodes=%d" (Option.value (member_int "nodes" cell) ~default:0))
                  cell)
              (member_list "cluster" doc);
            Option.iter
              (fun cell ->
                pp_cluster_cell
                  (if Option.value (member_int "ok" cell) ~default:0 = 1 then "migration"
                   else "migration!?")
                  cell)
              (member "migration" doc);
            Option.iter (fun cell -> pp_cluster_cell "kill-node" cell) (member "kill" doc);
            (* v6 connection-scaling quad (thread plane vs reactor plane at
               rising connection counts); absent from v1-v5 records. *)
            List.iter
              (fun cell ->
                Format.printf
                  "  conns=%-4d %-8s R=%d  %8d req %5d err  %9.0f req/s  p50 %6d  p99 %6d us@."
                  (Option.value (member_int "conns" cell) ~default:0)
                  (Option.value (member_str "plane" cell) ~default:"?")
                  (Option.value (member_int "reactors" cell) ~default:0)
                  (Option.value (member_int "requests" cell) ~default:0)
                  (Option.value (member_int "errors" cell) ~default:0)
                  (Option.value (member_number "throughput_rps" cell) ~default:0.)
                  (Option.value (member_int "p50_us" cell) ~default:0)
                  (Option.value (member_int "p99_us" cell) ~default:0))
              (member_list "conn_scale" doc);
            errors
          end
          else begin
            (match member "total" doc with
            | Some total ->
                Format.printf "total    : %.3f s wall, %d steps (%.0f steps/s)@."
                  (Option.value (member_number "wall_s" total) ~default:0.)
                  (Option.value (member_int "steps" total) ~default:0)
                  (Option.value (member_number "steps_per_sec" total) ~default:0.)
            | None -> ());
            Format.printf "entries  : %d experiments, %d points@."
              (Stdlib.List.length (member_list "experiments" doc))
              (Stdlib.List.length (member_list "points" doc));
            0
          end
        in
        let compared =
          match compare with
          | None -> 0
          | Some baseline -> (
              match load_json baseline with
              | Error msg ->
                  Format.eprintf "%s: not valid JSON: %s@." baseline msg;
                  2
              | Ok base -> (
                  match (serve_throughput doc, serve_throughput base) with
                  | Some now, Some before ->
                      let floor = before *. (1. -. tolerance) in
                      Format.printf "compare  : %.0f req/s vs baseline %.0f (floor %.0f)@." now
                        before floor;
                      if now < floor then begin
                        Format.eprintf
                          "%s: throughput %.0f req/s regressed >%.0f%% below baseline %.0f@."
                          file now (tolerance *. 100.) before;
                        1
                      end
                      else 0
                  | _ ->
                      Format.eprintf "--compare needs serve-schema records with totals on both \
                                      sides@.";
                      2))
        in
        if compared <> 0 then compared
        else if require_zero_errors && errors > 0 then begin
          Format.eprintf "%s: %d errors (required zero)@." file errors;
          1
        end
        else 0
  in
  Cmd.v (Cmd.info "bench-report" ~doc)
    Term.(const run $ file_arg $ require_zero_errors_arg $ compare_arg $ tolerance_arg)

(* -------------------------------- main ----------------------------------- *)

let () =
  let doc =
    "k-exclusion algorithms (Anderson & Moir, PODC 1994) — simulator, checker and resilient \
     KV service"
  in
  let info = Cmd.info "kexd" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; sweep_cmd; verify_cmd; hunt_cmd; lint_cmd; srclint_cmd; serve_cmd;
            loadgen_cmd; serve_sweep_cmd; cluster_sweep_cmd; bench_report_cmd ]))
